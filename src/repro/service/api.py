"""The campaign service's HTTP/JSON surface (stdlib only).

Small, flat, and cache-shaped:

========  =====================  ==========================================
Method    Path                   Meaning
========  =====================  ==========================================
GET       ``/health``            Daemon liveness + store/pool/executor
                                 telemetry
GET       ``/queue``             Queue depth per state + drain counters +
                                 live ETA
POST      ``/submit``            Campaign grid or single spec; responds
                                 with a :class:`SubmissionReceipt` (fully
                                 cached submissions are complete instantly)
GET       ``/status/<ticket>``   Per-ticket progress + ETA
GET       ``/result/<ticket>``   Folded series of a completed ticket
                                 (409 while trials are in flight)
GET       ``/trial/<key>``       One banked trial + provenance — the
                                 instant content-hash lookup path
========  =====================  ==========================================

Handlers run on :class:`http.server.ThreadingHTTPServer` threads and
touch shared state only through the backend (internally locked) and the
daemon's thread-safe telemetry snapshots, so no handler-side locking is
needed.  Responses are always JSON; errors carry ``{"error": ...}`` and
a meaningful status code.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple, Type

from repro.store.result_store import trial_to_dict

from repro.service.submission import (
    plan_submission,
    submission_campaign,
    ticket_results,
    ticket_status,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.daemon import CampaignService

#: Submissions larger than this are refused outright (a campaign grid
#: document is a few KB; anything near this bound is a client bug).
MAX_BODY_BYTES = 4 * 1024 * 1024


def make_handler(
    service: "CampaignService",
) -> Type[BaseHTTPRequestHandler]:
    """Build the request-handler class bound to one daemon instance."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-bgp-service/1"
        protocol_version = "HTTP/1.1"

        # -- plumbing --------------------------------------------------
        def log_message(self, fmt: str, *args: Any) -> None:
            service.log_request_line(fmt % args)

        def _send_json(
            self, status: int, payload: Dict[str, Any]
        ) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, status: int, message: str) -> None:
            self._send_json(status, {"error": message})

        def _read_body(self) -> Optional[Dict[str, Any]]:
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0:
                self._error(400, "request body required")
                return None
            if length > MAX_BODY_BYTES:
                self._error(413, "request body too large")
                return None
            try:
                data = json.loads(self.rfile.read(length))
            except ValueError:
                self._error(400, "request body is not valid JSON")
                return None
            if not isinstance(data, dict):
                self._error(400, "request body must be a JSON object")
                return None
            return data

        @staticmethod
        def _route(path: str) -> Tuple[str, str]:
            path = path.split("?", 1)[0].rstrip("/") or "/"
            head, _, tail = path.lstrip("/").partition("/")
            return head, tail

        # -- GET -------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 - stdlib handler name
            head, tail = self._route(self.path)
            try:
                if head == "health" and not tail:
                    self._send_json(200, service.health())
                elif head == "queue" and not tail:
                    self._send_json(200, service.queue_status())
                elif head == "status" and tail:
                    status = ticket_status(tail, service.backend)
                    service.annotate_eta(status)
                    self._send_json(200, status)
                elif head == "result" and tail:
                    self._send_json(
                        200, ticket_results(tail, service.backend)
                    )
                elif head == "trial" and tail:
                    trial = service.backend.get(tail)
                    if trial is None:
                        self._error(404, f"no trial banked under {tail}")
                    else:
                        self._send_json(
                            200,
                            {
                                "key": tail,
                                "trial": trial_to_dict(trial),
                                "provenance": service.backend.provenance(
                                    tail
                                ),
                            },
                        )
                else:
                    self._error(404, f"unknown endpoint {self.path!r}")
            except KeyError as exc:
                self._error(404, str(exc.args[0]) if exc.args else "not found")
            except ValueError as exc:
                # ticket_results while trials are in flight
                self._error(409, str(exc))
            except Exception as exc:  # noqa: BLE001 - surface, don't die
                self._error(500, f"{type(exc).__name__}: {exc}")

        # -- POST ------------------------------------------------------
        def do_POST(self) -> None:  # noqa: N802 - stdlib handler name
            head, tail = self._route(self.path)
            if head != "submit" or tail:
                self._error(404, f"unknown endpoint {self.path!r}")
                return
            if service.stopping:
                self._error(503, "service is draining for shutdown")
                return
            body = self._read_body()
            if body is None:
                return
            try:
                campaign = submission_campaign(body)
                receipt = plan_submission(campaign, service.backend)
            except (ValueError, KeyError, TypeError) as exc:
                self._error(400, f"invalid submission: {exc}")
                return
            except Exception as exc:  # noqa: BLE001 - surface, don't die
                self._error(500, f"{type(exc).__name__}: {exc}")
                return
            service.note_submission(receipt)
            self._send_json(202 if not receipt.complete else 200,
                            receipt.to_dict())

    return Handler
