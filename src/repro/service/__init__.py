"""The campaign service: a daemon serving cached convergence results.

Trials in this repo are pure functions of ``(topology, spec, seed)``
with content-addressed caching (:mod:`repro.store`) and a persistent
warm worker pool (:mod:`repro.core.parallel`) — exactly the ingredients
of a results-serving backend.  This package assembles them into one:

* :mod:`repro.service.backend` — :class:`StoreBackend`, the storage
  protocol the service is written against (SQLite's ``ResultStore`` is
  one registered implementation; the service never touches SQL);
* :mod:`repro.service.submission` — turns a submitted campaign grid or
  single spec into per-trial content keys, splits cache hits from cold
  trials, and enqueues the cold ones under a ticket;
* :mod:`repro.service.executor` — the drain loop: lease queued trials,
  rebuild their specs/topologies, run them on the warm pool with
  digest-affinity batching, bank results, retry with backoff;
* :mod:`repro.service.daemon` — :class:`CampaignService`, wiring the
  HTTP API (:mod:`repro.service.api`), the executor thread and graceful
  SIGTERM/SIGINT drain together;
* :mod:`repro.service.client` — a thin stdlib HTTP client
  (:class:`ServiceClient`) mirroring the API 1:1.

CLI entry points: ``repro-bgp serve`` / ``submit`` / ``result`` /
``queue status`` / ``store stats``.  See ``docs/SERVICE.md``.
"""

from repro.service.backend import (
    StoreBackend,
    open_backend,
    register_store_backend,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import CampaignService, ServiceConfig
from repro.service.executor import ExecutorConfig, QueueExecutor
from repro.service.submission import (
    SubmissionReceipt,
    plan_submission,
    submission_campaign,
    ticket_results,
    ticket_status,
)

__all__ = [
    "CampaignService",
    "ExecutorConfig",
    "QueueExecutor",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "StoreBackend",
    "SubmissionReceipt",
    "open_backend",
    "plan_submission",
    "register_store_backend",
    "submission_campaign",
    "ticket_results",
    "ticket_status",
]
