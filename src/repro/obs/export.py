"""Exporters: metrics to JSONL, probe series to CSV, manifests to JSON.

File formats are deliberately boring:

* ``metrics.jsonl`` — one JSON object per metric child (plus per-trial
  snapshot records and profiler rows when available), so a run's entire
  metric state greps and streams;
* ``timeseries.csv`` — per-node probe rows, one per (run, sample, node);
* ``aggregates.csv`` — network-wide roll-ups, one row per (run, sample);
* ``manifest.json`` — the :class:`~repro.obs.manifest.RunManifest`.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Union

from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.probes import NetworkProbe

TIMESERIES_FIELDS = [
    "run",
    "time",
    "node",
    "queue_depth",
    "unfinished_work",
    "mrai_level",
    "mrai_value",
    "loc_rib_size",
]

AGGREGATE_FIELDS = [
    "run",
    "time",
    "nodes",
    "busy_nodes",
    "total_queue_depth",
    "queue_p50",
    "queue_p95",
    "queue_max",
    "work_p50",
    "work_p95",
    "work_max",
    "loc_rib_total",
    "mrai_levels",
]


def write_jsonl(records: Iterable[Dict[str, Any]], path: Union[str, Path]) -> Path:
    """Write dict records as one JSON object per line."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True))
            fh.write("\n")
    return path


def metrics_records(
    registry: MetricsRegistry,
    extra_records: Sequence[Dict[str, Any]] = (),
) -> List[Dict[str, Any]]:
    """Registry state plus any extra rows (trial snapshots, profile rows)."""
    records = registry.records()
    records.extend(extra_records)
    return records


def write_metrics_jsonl(
    registry: MetricsRegistry,
    path: Union[str, Path],
    extra_records: Sequence[Dict[str, Any]] = (),
) -> Path:
    return write_jsonl(metrics_records(registry, extra_records), path)


def write_timeseries_csv(
    probes: Sequence[NetworkProbe], path: Union[str, Path]
) -> Path:
    """Per-node probe samples, with a ``run`` column indexing the probe."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(TIMESERIES_FIELDS)
        for run, probe in enumerate(probes):
            for s in probe.node_samples:
                writer.writerow(
                    [
                        run,
                        f"{s.time:.6f}",
                        s.node,
                        s.queue_depth,
                        f"{s.unfinished_work:.6f}",
                        s.mrai_level,
                        f"{s.mrai_value:.6f}",
                        s.loc_rib_size,
                    ]
                )
    return path


def write_aggregates_csv(
    probes: Sequence[NetworkProbe], path: Union[str, Path]
) -> Path:
    """Network-wide aggregate samples, one row per (run, sample)."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(AGGREGATE_FIELDS)
        for run, probe in enumerate(probes):
            for a in probe.aggregates:
                levels = "/".join(
                    f"{level}:{count}"
                    for level, count in sorted(a.mrai_levels.items())
                )
                writer.writerow(
                    [
                        run,
                        f"{a.time:.6f}",
                        a.nodes,
                        a.busy_nodes,
                        a.total_queue_depth,
                        f"{a.queue_p50:.6f}",
                        f"{a.queue_p95:.6f}",
                        f"{a.queue_max:.6f}",
                        f"{a.work_p50:.6f}",
                        f"{a.work_p95:.6f}",
                        f"{a.work_max:.6f}",
                        a.loc_rib_total,
                        levels,
                    ]
                )
    return path


def write_manifest(manifest: RunManifest, path: Union[str, Path]) -> Path:
    return manifest.save(path)
