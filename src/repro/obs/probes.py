"""Per-node time-series probes — the signals behind Figs 7-9.

The paper's dynamic MRAI scheme is driven by *unfinished work* (input-queue
length x mean per-update processing delay); its evaluation figures are
time-resolved views of that signal.  :class:`NetworkProbe` samples a running
:class:`~repro.bgp.network.BGPNetwork` at a fixed simulated interval and
records, per alive node:

* unfinished work (seconds),
* input-queue depth (messages),
* the active MRAI ladder level and the MRAI value in force,
* Loc-RIB size (routes),

plus network-wide aggregates (p50 / p95 / max of work and queue depth) per
sample.  Sampling is pure observation: the probe schedules its own events on
the simulator queue but never touches protocol state or random streams, so
an instrumented run takes the *identical* protocol trajectory as an
uninstrumented one with the same seed.

The probe detaches automatically at quiescence (otherwise its own events
would keep the simulation alive forever) and can be re-armed with another
:meth:`NetworkProbe.start` — the experiment layer does exactly that between
warm-up and failure injection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bgp.network import BGPNetwork


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 1])."""
    if not (0.0 <= q <= 1.0):
        raise ValueError("q must be in [0, 1]")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, int(q * len(ordered) + 0.999999))
    return ordered[rank - 1]


@dataclass(frozen=True)
class NodeSample:
    """One node's state at one sample instant."""

    time: float
    node: int
    queue_depth: int
    unfinished_work: float
    mrai_level: int
    mrai_value: float
    loc_rib_size: int


@dataclass(frozen=True)
class AggregateSample:
    """Network-wide roll-up of one sample instant."""

    time: float
    nodes: int
    busy_nodes: int
    total_queue_depth: int
    queue_p50: float
    queue_p95: float
    queue_max: float
    work_p50: float
    work_p95: float
    work_max: float
    loc_rib_total: int
    #: Dynamic-MRAI ladder occupancy: level -> node count.
    mrai_levels: Dict[int, int]


class ProbeData:
    """Detached probe samples — e.g. shipped back from a worker process.

    Quacks like a finished :class:`NetworkProbe` for the exporters (which
    only read ``node_samples`` and ``aggregates``); ``network`` is None
    because the network that produced the samples lived in another
    process.
    """

    __slots__ = ("node_samples", "aggregates", "network")

    def __init__(
        self,
        node_samples: Sequence[NodeSample],
        aggregates: Sequence[AggregateSample],
    ) -> None:
        self.node_samples: List[NodeSample] = list(node_samples)
        self.aggregates: List[AggregateSample] = list(aggregates)
        self.network = None


class NetworkProbe:
    """Periodic in-simulation sampler for a :class:`BGPNetwork`.

    Parameters
    ----------
    network:
        The network to observe.
    interval:
        Sampling period in simulated seconds.
    nodes:
        Restrict per-node sampling to these node ids (aggregates still
        cover every alive node).  ``None`` samples all nodes.
    keep_node_samples:
        Set False to record aggregates only (caps memory on huge runs).
    """

    def __init__(
        self,
        network: "BGPNetwork",
        interval: float = 0.25,
        nodes: Optional[Sequence[int]] = None,
        keep_node_samples: bool = True,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.network = network
        self.interval = interval
        self.tracked = frozenset(nodes) if nodes is not None else None
        self.keep_node_samples = keep_node_samples
        self.node_samples: List[NodeSample] = []
        self.aggregates: List[AggregateSample] = []
        self._armed = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """(Re-)arm the probe: a snapshot now, then periodic samples.

        Idempotent while armed; restarts sampling after an automatic
        detach (see :meth:`_tick`).
        """
        if self._armed:
            return
        self._armed = True
        self._sample()
        self.network.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        """Stop after the currently pending sample (idempotent)."""
        self._armed = False

    @property
    def armed(self) -> bool:
        return self._armed

    def _tick(self) -> None:
        if not self._armed:
            return
        self._sample()
        net = self.network
        # Detach at quiescence: the probe's own events must not keep the
        # simulation alive once the protocol has gone silent.
        if net.sim.pending_events == 0 and net.is_quiescent():
            self._armed = False
            return
        net.sim.schedule(self.interval, self._tick)

    def _sample(self) -> None:
        net = self.network
        now = net.sim.now
        queue_depths: List[float] = []
        works: List[float] = []
        busy = 0
        rib_total = 0
        levels: Dict[int, int] = {}
        keep = self.keep_node_samples
        tracked = self.tracked
        for speaker in net.alive_speakers():
            depth = speaker.queue_length
            work = speaker.unfinished_work()
            queue_depths.append(depth)
            works.append(work)
            rib_total += len(speaker.loc_rib)
            if speaker.busy:
                busy += 1
            level = getattr(speaker.controller, "level", 0)
            levels[level] = levels.get(level, 0) + 1
            if keep and (tracked is None or speaker.node_id in tracked):
                self.node_samples.append(
                    NodeSample(
                        time=now,
                        node=speaker.node_id,
                        queue_depth=depth,
                        unfinished_work=work,
                        mrai_level=level,
                        mrai_value=speaker.controller.value(),
                        loc_rib_size=len(speaker.loc_rib),
                    )
                )
        self.aggregates.append(
            AggregateSample(
                time=now,
                nodes=len(queue_depths),
                busy_nodes=busy,
                total_queue_depth=int(sum(queue_depths)),
                queue_p50=percentile(queue_depths, 0.50),
                queue_p95=percentile(queue_depths, 0.95),
                queue_max=max(queue_depths) if queue_depths else 0.0,
                work_p50=percentile(works, 0.50),
                work_p95=percentile(works, 0.95),
                work_max=max(works) if works else 0.0,
                loc_rib_total=rib_total,
                mrai_levels=levels,
            )
        )

    # ------------------------------------------------------------------
    # Derived series
    # ------------------------------------------------------------------
    @property
    def times(self) -> List[float]:
        return [a.time for a in self.aggregates]

    def node_series(self, node: int, field: str) -> List[float]:
        """One node's attribute over time, e.g. ``("unfinished_work")``."""
        return [
            getattr(s, field) for s in self.node_samples if s.node == node
        ]

    def aggregate_series(self, field: str) -> List[float]:
        """One aggregate attribute over time, e.g. ``("work_p95")``."""
        return [getattr(a, field) for a in self.aggregates]

    def sampled_nodes(self) -> List[int]:
        return sorted({s.node for s in self.node_samples})

    def peak(self, field: str = "work_max") -> float:
        series = self.aggregate_series(field)
        return max(series) if series else 0.0

    def __len__(self) -> int:
        return len(self.aggregates)
