"""Run manifests: what ran, where, with which knobs, how long each phase took.

A manifest is the provenance record written next to every metrics export:
enough to re-run the experiment (spec fields + seeds + package version) and
enough to compare simulator *speed* across commits (wall-clock phase
timings for warm-up / failure / convergence, host fingerprint).  Manifests
round-trip through JSON losslessly via :meth:`RunManifest.save` /
:meth:`RunManifest.load`.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import socket
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Union


def jsonable(value: Any) -> Any:
    """Best-effort conversion of arbitrary config objects to JSON types."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    return repr(value)


def host_fingerprint() -> Dict[str, str]:
    """Where the run happened (for wall-clock comparability)."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "hostname": socket.gethostname(),
    }


@dataclass
class PhaseTiming:
    """One named phase of a run: wall-clock plus simulation-side extent."""

    name: str
    wall_seconds: float
    sim_seconds: float = 0.0
    events: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
            "events": self.events,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PhaseTiming":
        return cls(
            name=data["name"],
            wall_seconds=data["wall_seconds"],
            sim_seconds=data.get("sim_seconds", 0.0),
            events=data.get("events", 0),
        )


@dataclass
class RunManifest:
    """Provenance + timing record of one experiment or sweep run."""

    kind: str = "repro-run"
    created_utc: str = ""
    package_version: str = ""
    host: Dict[str, str] = field(default_factory=dict)
    command: str = ""
    spec: Dict[str, Any] = field(default_factory=dict)
    seeds: List[int] = field(default_factory=list)
    topology: str = ""
    phases: List[PhaseTiming] = field(default_factory=list)
    counters: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def create(
        cls,
        *,
        kind: str = "repro-run",
        command: str = "",
        spec: Any = None,
        seeds: Optional[List[int]] = None,
        topology: str = "",
        phases: Optional[List[PhaseTiming]] = None,
        counters: Optional[Dict[str, Any]] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> "RunManifest":
        """A manifest stamped with now, the package version and the host."""
        from repro import __version__

        return cls(
            kind=kind,
            created_utc=datetime.now(timezone.utc).isoformat(),
            package_version=__version__,
            host=host_fingerprint(),
            command=command,
            spec=jsonable(spec) if spec is not None else {},
            seeds=list(seeds) if seeds else [],
            topology=topology,
            phases=list(phases) if phases else [],
            counters=dict(counters) if counters else {},
            extra=dict(extra) if extra else {},
        )

    # ------------------------------------------------------------------
    def add_phase(
        self,
        name: str,
        wall_seconds: float,
        sim_seconds: float = 0.0,
        events: int = 0,
    ) -> PhaseTiming:
        timing = PhaseTiming(name, wall_seconds, sim_seconds, events)
        self.phases.append(timing)
        return timing

    def phase(self, name: str) -> Optional[PhaseTiming]:
        for timing in self.phases:
            if timing.name == name:
                return timing
        return None

    @property
    def total_wall_seconds(self) -> float:
        return sum(p.wall_seconds for p in self.phases)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "created_utc": self.created_utc,
            "package_version": self.package_version,
            "host": dict(self.host),
            "command": self.command,
            "spec": self.spec,
            "seeds": list(self.seeds),
            "topology": self.topology,
            "phases": [p.to_dict() for p in self.phases],
            "counters": dict(self.counters),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        return cls(
            kind=data.get("kind", "repro-run"),
            created_utc=data.get("created_utc", ""),
            package_version=data.get("package_version", ""),
            host=dict(data.get("host", {})),
            command=data.get("command", ""),
            spec=data.get("spec", {}),
            seeds=list(data.get("seeds", [])),
            topology=data.get("topology", ""),
            phases=[PhaseTiming.from_dict(p) for p in data.get("phases", [])],
            counters=dict(data.get("counters", {})),
            extra=dict(data.get("extra", {})),
        )

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_dict(data)
