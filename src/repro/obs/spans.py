"""Hierarchical wall-clock spans for the orchestration runtime.

The event-loop profiler (:mod:`repro.obs.profiling`) only sees time spent
*inside* simulation handlers; everything around the simulations — pool
spin-up, topology pickling, store lookups, obs payload round-trips, fold
time — was invisible, which is exactly where the parallel backend has
been losing its speedup (BENCH_sweep.json: 0.9x at jobs=4).  This module
is the paper's convergence-*delay* discipline applied to the repo's own
runtime: every orchestration step runs inside a named span, and a single
run can answer "where did the wall clock go?".

Usage::

    from repro.obs.spans import record_spans, span, traced

    with record_spans() as recorder:
        with span("campaign.cell", label="dynamic", x=0.1) as sp:
            ...
            sp.set(trials=12)
    print(recorder.render_rollup())
    recorder.write_chrome_trace("spans.json")   # load in Perfetto

Design points:

* **Near-zero cost when disabled.**  ``span()`` reads one module global;
  with no recorder installed it returns a shared no-op context manager —
  no allocation, no clock read, no contextvar touch.  The instrumented
  call sites therefore stay on every code path unconditionally.
* **Nesting via contextvars.**  The current span *path* lives in a
  :class:`~contextvars.ContextVar`, so nesting is correct across
  threads and ``contextvars.copy_context`` boundaries; a span's identity
  is its slash-joined path (``sweep/trials.run/pool.run/pool.submit``).
* **Process-safe worker round-trip.**  A recorder's :meth:`records` are
  plain picklable dicts; :meth:`~SpanRecorder.absorb_records` folds a
  worker's records into the parent (grafted under a prefix), following
  the :meth:`repro.obs.metrics.MetricsRegistry.absorb_records` pattern.
  Timestamps are ``time.perf_counter`` values, which on Linux read the
  system-wide ``CLOCK_MONOTONIC`` — worker and parent spans share a
  timeline on the platforms the benchmarks run on.
* **Two exports.**  :meth:`~SpanRecorder.rollup` aggregates per-path
  count / total / mean / %-of-parent (the attribution table
  ``tools/bench_report.py`` consumes); :meth:`~SpanRecorder.chrome_trace`
  emits Chrome trace-event JSON loadable in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import functools
import json
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Union

__all__ = [
    "NOOP_SPAN",
    "RollupRow",
    "Span",
    "SpanRecorder",
    "active_recorder",
    "record_spans",
    "span",
    "traced",
]

#: The installed recorder (None = spans disabled).  A plain module global,
#: not a contextvar: the disabled check must be a single dict-free load.
_RECORDER: Optional["SpanRecorder"] = None

#: Slash-joined path of the innermost open span ("" at top level).
_PATH: ContextVar[str] = ContextVar("repro_span_path", default="")


def active_recorder() -> Optional["SpanRecorder"]:
    """The recorder installed by the innermost :func:`record_spans`."""
    return _RECORDER


class _NoopSpan:
    """Shared do-nothing span returned while recording is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


#: The singleton no-op span (one object for the whole process).
NOOP_SPAN = _NoopSpan()


class Span:
    """One live span: a context manager that records itself on exit."""

    __slots__ = ("recorder", "name", "attrs", "path", "start", "_token")

    def __init__(
        self, recorder: "SpanRecorder", name: str, attrs: Dict[str, Any]
    ) -> None:
        self.recorder = recorder
        self.name = name
        self.attrs = attrs
        self.path = name
        self.start = 0.0
        self._token = None

    def __enter__(self) -> "Span":
        parent = _PATH.get()
        self.path = f"{parent}/{self.name}" if parent else self.name
        self._token = _PATH.set(self.path)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        end = time.perf_counter()
        if self._token is not None:
            _PATH.reset(self._token)
        self.recorder._append(
            self.name, self.path, self.start, end - self.start, self.attrs
        )
        return False

    def set(self, **attrs: Any) -> "Span":
        """Attach (or update) attributes while the span is open."""
        self.attrs.update(attrs)
        return self


def span(name: str, **attrs: Any) -> Union[Span, _NoopSpan]:
    """A context manager timing one named step (no-op when disabled).

    The returned object supports ``set(**attrs)`` to add attributes
    discovered mid-span (e.g. cache hit/miss, pool spin-up seconds).
    """
    recorder = _RECORDER
    if recorder is None:
        return NOOP_SPAN
    return Span(recorder, name, attrs)


def traced(
    name: Optional[str] = None, **attrs: Any
) -> Callable[[Callable], Callable]:
    """Decorator form of :func:`span` (span name defaults to the function's
    qualified name)::

        @traced("store.compact")
        def compact(self): ...
    """

    def wrap(fn: Callable) -> Callable:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def inner(*args: Any, **kwargs: Any):
            if _RECORDER is None:
                return fn(*args, **kwargs)
            with span(label, **attrs):
                return fn(*args, **kwargs)

        return inner

    return wrap


@dataclass(frozen=True)
class RollupRow:
    """Aggregated cost of one span path."""

    path: str
    count: int
    total_seconds: float
    #: Fraction of the parent path's total (roots: of the recorder's
    #: wall-clock extent).  May exceed 1.0 for spans that overlap in
    #: wall time across worker processes — that excess *is* the
    #: parallelism.
    share_of_parent: float

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1]

    @property
    def depth(self) -> int:
        return self.path.count("/")

    @property
    def mean_ms(self) -> float:
        return self.total_seconds / self.count * 1e3 if self.count else 0.0


class SpanRecorder:
    """Accumulates finished spans (from this process and from workers)."""

    def __init__(self) -> None:
        #: Finished spans as plain dicts: name, path, start, dur, pid, attrs.
        self.records: List[Dict[str, Any]] = []
        self.pid = os.getpid()

    def _append(
        self,
        name: str,
        path: str,
        start: float,
        dur: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.records.append(
            {
                "name": name,
                "path": path,
                "start": start,
                "dur": dur,
                "pid": self.pid,
                "attrs": dict(attrs) if attrs else {},
            }
        )

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()

    # ------------------------------------------------------------------
    # Worker round-trip
    # ------------------------------------------------------------------
    def absorb_records(
        self, records: Iterable[Dict[str, Any]], prefix: str = ""
    ) -> None:
        """Fold exported records from another recorder into this one.

        ``prefix`` grafts the incoming span tree under a path segment
        (the parent session uses ``"workers"``), keeping worker spans
        distinguishable from the parent's own in the rollup.  Records
        are copied verbatim otherwise — timestamps, pids and attributes
        survive the round-trip losslessly.
        """
        for record in records:
            grafted = dict(record)
            if prefix:
                grafted["path"] = f"{prefix}/{record['path']}"
            self.records.append(grafted)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    @property
    def wall_seconds(self) -> float:
        """Extent from the earliest span start to the latest span end."""
        if not self.records:
            return 0.0
        start = min(r["start"] for r in self.records)
        end = max(r["start"] + r["dur"] for r in self.records)
        return end - start

    def total(self, name: str) -> float:
        """Summed seconds of every span with this (leaf) name."""
        return sum(r["dur"] for r in self.records if r["name"] == name)

    def rollup(self) -> List[RollupRow]:
        """Per-path aggregation, parents before children (path order)."""
        totals: Dict[str, List[float]] = {}
        for record in self.records:
            cell = totals.setdefault(record["path"], [0, 0.0])
            cell[0] += 1
            cell[1] += record["dur"]
        wall = self.wall_seconds or 1.0
        rows = []
        for path in sorted(totals):
            count, total = totals[path]
            parent = path.rsplit("/", 1)[0] if "/" in path else None
            denom = totals[parent][1] if parent in totals else wall
            rows.append(
                RollupRow(
                    path=path,
                    count=int(count),
                    total_seconds=total,
                    share_of_parent=total / denom if denom else 0.0,
                )
            )
        return rows

    def render_rollup(self, max_rows: Optional[int] = None) -> str:
        """Human-readable rollup table (the `--spans-out` console view)."""
        rows = self.rollup()
        pids = {r["pid"] for r in self.records}
        lines = [
            f"span rollup: {len(self.records)} spans over "
            f"{self.wall_seconds:.3f} s wall, {len(pids)} process(es)",
            f"{'path':<52} {'count':>6} {'total s':>9} {'mean ms':>9} "
            f"{'% parent':>9}",
        ]
        shown = rows if max_rows is None else rows[:max_rows]
        known = {r.path for r in rows}
        for row in shown:
            parent = row.path.rsplit("/", 1)[0] if "/" in row.path else None
            # Orphan subtrees (grafted worker spans under "workers/") show
            # their full path — an indented leaf name would read as a
            # child of whatever row happens to sit above it.
            if parent is not None and parent not in known:
                label = row.path
            else:
                label = f"{'  ' * row.depth}{row.name}"
            if len(label) > 52:
                label = label[:49] + "..."
            lines.append(
                f"{label:<52} {row.count:>6} {row.total_seconds:>9.3f} "
                f"{row.mean_ms:>9.2f} {row.share_of_parent:>8.1%}"
            )
        if max_rows is not None and len(rows) > max_rows:
            lines.append(f"... and {len(rows) - max_rows} more paths")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Chrome trace export
    # ------------------------------------------------------------------
    def chrome_trace(self) -> Dict[str, Any]:
        """The records as a Chrome trace-event document (Perfetto-ready).

        Complete ``"X"`` (duration) events with microsecond timestamps
        rebased to the earliest span; one ``process_name`` metadata row
        per pid so worker lanes are labeled in the viewer.  The document
        also carries the rollup under a ``"rollup"`` key (ignored by
        trace viewers, consumed by ``tools/bench_report.py``).
        """
        t0 = min((r["start"] for r in self.records), default=0.0)
        events: List[Dict[str, Any]] = []
        for pid in sorted({r["pid"] for r in self.records}):
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": pid,
                    "args": {
                        "name": (
                            "parent" if pid == self.pid else f"worker-{pid}"
                        )
                    },
                }
            )
        for record in self.records:
            args = {"path": record["path"]}
            args.update(record["attrs"])
            events.append(
                {
                    "ph": "X",
                    "name": record["name"],
                    "cat": "repro",
                    "ts": round((record["start"] - t0) * 1e6, 3),
                    "dur": round(record["dur"] * 1e6, 3),
                    "pid": record["pid"],
                    "tid": record["pid"],
                    "args": args,
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "rollup": [
                {
                    "path": row.path,
                    "count": row.count,
                    "total_seconds": row.total_seconds,
                    "mean_ms": row.mean_ms,
                    "share_of_parent": row.share_of_parent,
                }
                for row in self.rollup()
            ],
        }

    def write_chrome_trace(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.chrome_trace(), indent=1) + "\n",
            encoding="utf-8",
        )
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SpanRecorder spans={len(self.records)} pid={self.pid}>"


@contextmanager
def record_spans(
    recorder: Optional[SpanRecorder] = None,
) -> Iterator[SpanRecorder]:
    """Enable span recording for a ``with`` block.

    Pass an existing recorder to accumulate across several blocks (the
    CLI passes the ObsSession's); otherwise a fresh one is created and
    yielded.  Blocks nest: the innermost recorder wins, the previous one
    is restored on exit.

    The span *path* restarts at root for the block: a forked worker
    inherits the parent's contextvars (including whatever span was open
    at fork time — typically ``pool.submit``), so without the reset
    worker spans would graft under a stale parent path.
    """
    global _RECORDER
    active = recorder if recorder is not None else SpanRecorder()
    previous = _RECORDER
    _RECORDER = active
    token = _PATH.set("")
    try:
        yield active
    finally:
        _PATH.reset(token)
        _RECORDER = previous
