"""Wall-clock profiling of the simulator event loop.

"Makes a hot path measurably faster" requires measuring it.  The
:class:`~repro.sim.engine.Simulator` exposes an optional ``on_event`` hook:
when set, the engine wraps each handler invocation in ``perf_counter`` and
reports ``(event, elapsed_seconds)``.  :class:`EventLoopProfiler` is the
standard consumer: it buckets events by *handler category* (the callback's
qualified name — ``BGPSpeaker._complete_batch``, ``Timer._fire``, ...) and
accumulates counts and wall-clock time per category across any number of
simulator runs.

With no profiler attached the engine takes a branch-free fast path, so the
disabled-by-default cost is a single ``None`` check per ``run()`` call, not
per event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator
    from repro.sim.events import Event


def handler_category(fn) -> str:
    """Stable name for an event callback (its qualified name)."""
    name = getattr(fn, "__qualname__", None)
    if name is not None:
        return name
    return type(fn).__name__


@dataclass(frozen=True)
class HandlerStats:
    """Accumulated cost of one handler category."""

    category: str
    events: int
    total_seconds: float
    share: float

    @property
    def mean_us(self) -> float:
        """Mean handler cost in microseconds."""
        return self.total_seconds / self.events * 1e6 if self.events else 0.0


class EventLoopProfiler:
    """Per-handler-category wall-clock accounting for the event loop.

    Usage::

        profiler = EventLoopProfiler()
        profiler.attach(network.sim)
        network.run_until_quiet()
        print(profiler.render(top_k=10))

    One profiler may be attached to several simulators in sequence (a
    sweep's trials, say); statistics accumulate across all of them.
    """

    def __init__(self) -> None:
        #: category -> [event count, total seconds]
        self._stats: Dict[str, List[float]] = {}
        self.total_events = 0
        self.total_seconds = 0.0
        #: The one bound-method object installed as the hook.  Attribute
        #: access creates a fresh bound method each time, so identity
        #: checks in attach/detach must go through this stable reference.
        self._hook = self._record

    # ------------------------------------------------------------------
    def attach(self, sim: "Simulator") -> None:
        """Install this profiler as the simulator's ``on_event`` hook."""
        if sim.on_event is not None and sim.on_event is not self._hook:
            raise ValueError("simulator already has an on_event hook")
        sim.on_event = self._hook

    def detach(self, sim: "Simulator") -> None:
        """Remove this profiler from the simulator (idempotent)."""
        if sim.on_event is self._hook:
            sim.on_event = None

    def _record(self, event: "Event", elapsed: float) -> None:
        cell = self._stats.get(handler_category(event.fn))
        if cell is None:
            cell = [0, 0.0]
            self._stats[handler_category(event.fn)] = cell
        cell[0] += 1
        cell[1] += elapsed
        self.total_events += 1
        self.total_seconds += elapsed

    def absorb_records(self, rows: Iterable[dict]) -> None:
        """Fold exported :meth:`records` rows from another profiler in.

        Used by the parallel backend: each worker profiles its own
        simulator and ships the rows home, so a sweep's profile covers
        every trial no matter which process ran it.
        """
        for row in rows:
            cell = self._stats.get(row["category"])
            if cell is None:
                cell = [0, 0.0]
                self._stats[row["category"]] = cell
            cell[0] += row["events"]
            cell[1] += row["total_seconds"]
            self.total_events += row["events"]
            self.total_seconds += row["total_seconds"]

    def reset(self) -> None:
        self._stats.clear()
        self.total_events = 0
        self.total_seconds = 0.0

    # ------------------------------------------------------------------
    @property
    def events_per_second(self) -> float:
        """Events executed per wall-clock second spent inside handlers."""
        if self.total_seconds <= 0.0:
            return 0.0
        return self.total_events / self.total_seconds

    def report(self, top_k: Optional[int] = None) -> List[HandlerStats]:
        """Categories ordered by total wall-clock cost, heaviest first."""
        total = self.total_seconds or 1.0
        rows = [
            HandlerStats(
                category=category,
                events=int(count),
                total_seconds=seconds,
                share=seconds / total,
            )
            for category, (count, seconds) in self._stats.items()
        ]
        rows.sort(key=lambda r: (-r.total_seconds, r.category))
        return rows[:top_k] if top_k is not None else rows

    def records(self) -> List[dict]:
        """Export-friendly dict rows (stable order)."""
        return [
            {
                "kind": "profile",
                "category": r.category,
                "events": r.events,
                "total_seconds": r.total_seconds,
                "share": r.share,
                "mean_us": r.mean_us,
            }
            for r in self.report()
        ]

    def top_categories(self, k: int = 5) -> List[dict]:
        """The ``k`` heaviest categories as plain manifest-ready dicts.

        This is what surfaces hotspots in the run manifest without
        anyone opening profile.txt: category, event count, total
        seconds, %-of-total share and mean us/event.
        """
        return [
            {
                "category": r.category,
                "events": r.events,
                "total_seconds": round(r.total_seconds, 6),
                "share": round(r.share, 4),
                "mean_us": round(r.mean_us, 3),
            }
            for r in self.report(k)
        ]

    def render(self, top_k: int = 10) -> str:
        """Human-readable top-k hotspot table."""
        rows = self.report(top_k)
        lines = [
            f"event-loop profile: {self.total_events} events, "
            f"{self.total_seconds:.3f} s in handlers "
            f"({self.events_per_second:,.0f} events/s)",
            f"{'category':<42} {'events':>10} {'total s':>9} "
            f"{'share':>7} {'mean us':>9}",
        ]
        for r in rows:
            lines.append(
                f"{r.category:<42} {r.events:>10} {r.total_seconds:>9.3f} "
                f"{r.share:>6.1%} {r.mean_us:>9.1f}"
            )
        if len(self._stats) > len(rows):
            lines.append(f"... and {len(self._stats) - len(rows)} more categories")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EventLoopProfiler events={self.total_events} "
            f"categories={len(self._stats)}>"
        )
