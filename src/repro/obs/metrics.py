"""Metrics registry: counters, gauges and fixed-bucket histograms.

The experiment layer's historical observability surface was two scalars per
run plus the ad-hoc :class:`repro.sim.trace.Counter`.  This module is the
structured replacement: a :class:`MetricsRegistry` holds *families* of
metrics addressed by name and an optional label set, e.g.
``updates_processed{node=7}``, so a single run can expose per-node and
network-wide views of the same signal side by side.

Three metric kinds, Prometheus-flavoured but in-process only:

* :class:`CounterMetric` — monotonically increasing totals;
* :class:`Gauge` — instantaneous values (queue depth, in-flight updates);
* :class:`Histogram` — fixed-bucket distributions (service times, batch
  sizes) with cumulative-free per-bucket counts, a sum, and an approximate
  percentile read-out.

Hot-path discipline: callers cache the child object once (``child =
registry.counter("updates_processed", node=7)``) and call ``child.inc()``
per event; the registry lookup never sits on a per-event path.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Canonical label identity: sorted (key, value) pairs.
LabelKey = Tuple[Tuple[str, Any], ...]

#: Default histogram buckets for durations in seconds (service times span
#: the paper's uniform(1 ms, 30 ms) range; the tail covers batched service).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.02, 0.03, 0.05, 0.1, 0.25, 0.5, 1.0,
)

#: Default buckets for small cardinalities (queue depths, batch sizes).
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
)


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


def format_metric_name(name: str, labels: LabelKey) -> str:
    """Render ``name{k=v,...}`` (plain ``name`` when unlabeled)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class _Child:
    """Common identity plumbing for all metric kinds."""

    __slots__ = ("name", "labels")
    kind = "abstract"

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels

    @property
    def full_name(self) -> str:
        return format_metric_name(self.name, self.labels)

    def label_dict(self) -> Dict[str, Any]:
        return dict(self.labels)

    def to_record(self) -> Dict[str, Any]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.full_name}>"


class CounterMetric(_Child):
    """A monotonically increasing total."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, name: str, labels: LabelKey) -> None:
        super().__init__(name, labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def to_record(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.label_dict(),
            "value": self.value,
        }


class Gauge(_Child):
    """An instantaneous value that can move in both directions."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def to_record(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.label_dict(),
            "value": self.value,
        }


class Histogram(_Child):
    """A fixed-bucket distribution.

    ``buckets`` are ascending upper bounds; an observation lands in the
    first bucket whose bound is >= the value, or in the implicit overflow
    bucket beyond the last bound.  Bucketing is exact and mergeable;
    :meth:`percentile` is approximate (it answers with the upper bound of
    the bucket containing the requested rank).
    """

    __slots__ = ("buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self, name: str, labels: LabelKey, buckets: Sequence[float]
    ) -> None:
        super().__init__(name, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.buckets = bounds
        #: Per-bucket counts; the extra final slot is the overflow bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def overflow(self) -> int:
        """Observations beyond the last bucket bound."""
        return self.counts[-1]

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q`` quantile (0..1).

        Returns ``inf`` when the rank falls in the overflow bucket and 0.0
        on an empty histogram.
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, int(q * self.count + 0.999999))
        seen = 0
        for bound, n in zip(self.buckets, self.counts):
            seen += n
            if seen >= rank:
                return bound
        return float("inf")

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (same bucket layout required).

        This is what lets per-trial histograms combine across trials
        without re-streaming the underlying samples.
        """
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.sum += other.sum
        self.count += other.count

    def to_record(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.label_dict(),
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class _Family:
    """All children of one metric name (shared kind, per-label children)."""

    __slots__ = ("name", "kind", "buckets", "children")

    def __init__(
        self, name: str, kind: str, buckets: Optional[Tuple[float, ...]]
    ) -> None:
        self.name = name
        self.kind = kind
        self.buckets = buckets
        self.children: Dict[LabelKey, _Child] = {}


class MetricsRegistry:
    """Container and factory for every metric a run exposes.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: repeated
    calls with the same name and labels return the same child object, so
    callers can safely cache at wiring time.  Registering the same name
    under a different kind (or a histogram under different buckets) is a
    configuration error and raises immediately.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    # -- factories -----------------------------------------------------
    def counter(self, name: str, **labels: Any) -> CounterMetric:
        return self._child(name, "counter", None, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._child(name, "gauge", None, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_TIME_BUCKETS
        return self._child(name, "histogram", bounds, labels)

    def _child(
        self,
        name: str,
        kind: str,
        buckets: Optional[Tuple[float, ...]],
        labels: Dict[str, Any],
    ):
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"cannot re-register as {kind}"
            )
        elif kind == "histogram" and buckets != family.buckets:
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{family.buckets}, got {buckets}"
            )
        key = _label_key(labels)
        child = family.children.get(key)
        if child is None:
            if kind == "counter":
                child = CounterMetric(name, key)
            elif kind == "gauge":
                child = Gauge(name, key)
            else:
                assert buckets is not None
                child = Histogram(name, key, buckets)
            family.children[key] = child
        return child

    # -- introspection -------------------------------------------------
    def get(self, name: str, **labels: Any) -> Optional[_Child]:
        """An existing child, or ``None`` (never creates)."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.children.get(_label_key(labels))

    def families(self) -> List[str]:
        return sorted(self._families)

    def children(self) -> Iterable[_Child]:
        """Every child, ordered by (name, labels) for stable exports."""
        for name in sorted(self._families):
            family = self._families[name]
            for key in sorted(family.children, key=repr):
                yield family.children[key]

    def __len__(self) -> int:
        return sum(len(f.children) for f in self._families.values())

    def records(self) -> List[Dict[str, Any]]:
        """One export record per child, deterministically ordered."""
        return [child.to_record() for child in self.children()]

    def absorb_records(self, records: Iterable[Dict[str, Any]]) -> None:
        """Fold exported :meth:`records` rows into this registry.

        The merge discipline matches how a single registry accumulates
        across trials: counters add, histograms merge bucket-wise, and
        gauges take the incoming value (last write wins — callers absorb
        in trial order, so the final value matches a serial run).  This
        is how per-trial registries from worker processes aggregate into
        the parent session's registry.
        """
        for record in records:
            kind = record.get("kind")
            labels = record.get("labels") or {}
            if kind == "counter":
                self.counter(record["name"], **labels).inc(record["value"])
            elif kind == "gauge":
                self.gauge(record["name"], **labels).set(record["value"])
            elif kind == "histogram":
                child = self.histogram(
                    record["name"], buckets=record["buckets"], **labels
                )
                incoming = record["counts"]
                for i, n in enumerate(incoming):
                    child.counts[i] += n
                child.sum += record["sum"]
                child.count += record["count"]
            # Unknown kinds (trial snapshots, profile rows) are not
            # registry state; ignore them rather than fail mid-merge.

    def snapshot(self) -> Dict[str, Any]:
        """Flat ``{full_name: value}`` view (histograms report their mean)."""
        out: Dict[str, Any] = {}
        for child in self.children():
            if isinstance(child, Histogram):
                out[child.full_name] = child.mean
            else:
                out[child.full_name] = child.value
        return out

    def clear(self) -> None:
        self._families.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MetricsRegistry families={len(self._families)} "
            f"children={len(self)}>"
        )
