"""Data-plane impact monitor: forwarding loops, blackholes, reachability.

Control-plane metrics (convergence delay, message counts) say when the
routers went quiet — not what users felt in between.  During convergence
the *data plane* is transiently broken: packets chase withdrawn paths
into blackholes, or orbit forwarding loops formed by inconsistent
intermediate bests.  :class:`DataPlaneMonitor` watches those effects
form and heal, per (node, destination) pair, directly off the simulated
speakers' best-route changes.

Design constraints (same discipline as spans/causality):

* **Off by default, trajectory bit-identical when on.**  The monitor
  only *reads* simulator state from inside the existing best-route
  update path — it never schedules events, draws random numbers, or
  mutates BGP state, so enabling it cannot perturb a trajectory.  The
  monitors-off cost in the hot path is one attribute read plus a None
  check (``network.dataplane is None``).
* **Incremental, not global rescans.**  :meth:`on_best_route` updates a
  per-destination next-hop table in O(1); affected destinations are
  queued and re-walked lazily, once per distinct simulation timestamp
  (:meth:`_flush`), so a burst of same-instant route changes is
  evaluated exactly once and zero-duration loop/blackhole artifacts
  never appear in the record.

The forwarding model: each speaker forwards traffic for ``dest`` to the
peer its current Loc-RIB best route came from (``Route.peer``); a
locally-originated route (``Route.is_local``) terminates the walk.  Per
destination this induces a functional graph over the alive nodes; every
node is in exactly one state:

* ``ok`` — the walk reaches an origin (``hops`` = path length taken),
* ``blackhole`` — the walk dies (no route, or next hop is dead),
* ``loop`` — the walk revisits a node (transient forwarding loop),
* ``down`` — the node itself is failed (not a data-plane event; kept
  separate so dead sources don't inflate unreachability totals).

State *transitions* are appended to :attr:`DataPlaneMonitor.transitions`
as ``(time, node, dest, status, hops)`` tuples;
:class:`repro.analysis.dataplane.DataPlaneTimeline` turns them into
unavailability windows, episode counts, and path-stretch statistics.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bgp.network import BGPNetwork
    from repro.bgp.routes import Route

__all__ = [
    "BLACKHOLE",
    "DOWN",
    "DataPlaneJsonlSink",
    "DataPlaneMonitor",
    "LOOP",
    "OK",
    "dataplane_jsonl_sink",
]

#: Pair statuses (see module docstring).
OK = "ok"
LOOP = "loop"
BLACKHOLE = "blackhole"
DOWN = "down"

#: A recorded state change: (sim time, node, dest, status, hops-or-None).
Transition = Tuple[float, int, int, str, Optional[int]]


class DataPlaneMonitor:
    """Incremental per-destination forwarding-graph watcher.

    Attach with :meth:`attach` (sets ``network.dataplane`` so the
    speaker hot path finds it), feed it best-route changes and node
    lifecycle events, then :meth:`finalize` to flush the last pending
    evaluation and stamp the observation end time.
    """

    def __init__(self) -> None:
        #: dest -> {node -> forwarding next hop (Route.peer)}.
        self._next_hop: Dict[int, Dict[int, int]] = {}
        #: dest -> nodes whose best route is locally originated.
        self._origins: Dict[int, Set[int]] = {}
        #: Every destination ever seen (origins may be withdrawn later).
        self._dests: Set[int] = set()
        self._alive: Set[int] = set()
        #: Current status/hops per (node, dest) pair.
        self._status: Dict[Tuple[int, int], str] = {}
        self._hops: Dict[Tuple[int, int], Optional[int]] = {}
        #: Destinations touched at :attr:`_pending_time`, awaiting a walk.
        self._pending: Set[int] = set()
        self._pending_time = 0.0
        self.transitions: List[Transition] = []
        self.end_time: Optional[float] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, network: "BGPNetwork") -> None:
        """Register on ``network`` and seed state from its speakers.

        Normally called on a fresh (pre-``start()``) network, but a
        warm network is seeded correctly too: current Loc-RIB bests are
        folded in and evaluated at the current simulation time.
        """
        network.dataplane = self
        now = network.sim.now
        for node_id, speaker in sorted(network.speakers.items()):
            if speaker.alive:
                self._alive.add(node_id)
        for node_id, speaker in sorted(network.speakers.items()):
            if not speaker.alive:
                continue
            for dest in speaker.loc_rib.destinations():
                self._note_route(node_id, dest, speaker.loc_rib.get(dest))
        if self._dests:
            self._pending.update(self._dests)
            self._pending_time = now

    # ------------------------------------------------------------------
    # Hooks (called from the simulation hot path — reads only)
    # ------------------------------------------------------------------
    def on_best_route(
        self,
        node_id: int,
        dest: int,
        route: Optional["Route"],
        now: float,
    ) -> None:
        """A speaker's Loc-RIB best for ``dest`` changed to ``route``."""
        if self._pending and now > self._pending_time:
            self._flush()
        self._note_route(node_id, dest, route)
        self._pending.add(dest)
        self._pending_time = now

    def on_nodes_failed(self, node_ids: Iterable[int], now: float) -> None:
        """Nodes died at ``now``: purge their forwarding state everywhere.

        Their own (node, dest) pairs close as ``down`` — kept distinct
        from blackholes so dead sources don't count as unreachability —
        and every destination is re-evaluated at the failure instant
        (any walk may have crossed the dead nodes).
        """
        if self._pending and now > self._pending_time:
            self._flush()
        for node_id in sorted(set(node_ids)):
            if node_id not in self._alive:
                continue
            self._alive.discard(node_id)
            for table in self._next_hop.values():
                table.pop(node_id, None)
            for origins in self._origins.values():
                origins.discard(node_id)
            for dest in sorted(self._dests):
                key = (node_id, dest)
                if key in self._status and self._status[key] != DOWN:
                    self._record(now, node_id, dest, DOWN, None)
        if self._dests:
            self._pending.update(self._dests)
            self._pending_time = now

    def on_node_recovered(self, node_id: int, now: float) -> None:
        """A node revived at ``now`` (call *before* it re-originates).

        The revived speaker starts with a cold RIB: until routes
        propagate back it blackholes everything except what it
        re-originates, which arrives through :meth:`on_best_route`.
        """
        if self._pending and now > self._pending_time:
            self._flush()
        self._alive.add(node_id)
        if self._dests:
            self._pending.update(self._dests)
            self._pending_time = now

    def finalize(self, now: float) -> None:
        """Flush the last pending evaluation and stamp the window end."""
        if self._pending:
            self._flush()
        self.end_time = now

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def destinations(self) -> List[int]:
        return sorted(self._dests)

    def status_of(self, node_id: int, dest: int) -> Optional[str]:
        """Current status of a pair (None if never evaluated)."""
        return self._status.get((node_id, dest))

    def records(self) -> List[Dict[str, Any]]:
        """Transitions as JSON-ready dicts (for sinks and worker payloads)."""
        return [
            {
                "kind": "dataplane",
                "time": t,
                "node": node,
                "dest": dest,
                "status": status,
                "hops": hops,
            }
            for t, node, dest, status, hops in self.transitions
        ]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _note_route(
        self, node_id: int, dest: int, route: Optional["Route"]
    ) -> None:
        self._dests.add(dest)
        table = self._next_hop.setdefault(dest, {})
        origins = self._origins.setdefault(dest, set())
        if route is None:
            table.pop(node_id, None)
            origins.discard(node_id)
        elif route.peer is None:
            table.pop(node_id, None)
            origins.add(node_id)
        else:
            table[node_id] = route.peer
            origins.discard(node_id)

    def _flush(self) -> None:
        t = self._pending_time
        for dest in sorted(self._pending):
            self._eval_dest(dest, t)
        self._pending.clear()

    def _eval_dest(self, dest: int, t: float) -> None:
        """Walk the forwarding graph for ``dest`` from every alive node.

        Memoized: each node is walked at most once per evaluation, so
        the total cost is O(alive nodes) per touched destination.
        """
        next_hop = self._next_hop.get(dest, {})
        origins = self._origins.get(dest, set())
        resolved: Dict[int, Tuple[str, Optional[int]]] = {}
        for start in sorted(self._alive):
            if start in resolved:
                continue
            trail: List[int] = []
            trail_set: Set[int] = set()
            node = start
            while True:
                if node in resolved:
                    outcome = resolved[node]
                    break
                if node in origins:
                    outcome = (OK, 0)
                    break
                if node in trail_set:
                    # Walk revisited a node: a forwarding loop.  The
                    # cycle and everything feeding into it all loop.
                    outcome = (LOOP, None)
                    break
                if node not in self._alive:
                    outcome = (BLACKHOLE, None)
                    break
                nxt = next_hop.get(node)
                if nxt is None:
                    outcome = (BLACKHOLE, None)
                    break
                trail.append(node)
                trail_set.add(node)
                node = nxt
            status, hops = outcome
            if not trail:
                resolved[start] = outcome
            else:
                for walked in reversed(trail):
                    if status == OK:
                        hops = (0 if hops is None else hops) + 1
                        resolved[walked] = (OK, hops)
                    else:
                        resolved[walked] = (status, None)
        for node in sorted(self._alive):
            status, hops = resolved[node]
            key = (node, dest)
            if self._status.get(key) != status or self._hops.get(key) != hops:
                self._record(t, node, dest, status, hops)

    def _record(
        self,
        t: float,
        node_id: int,
        dest: int,
        status: str,
        hops: Optional[int],
    ) -> None:
        key = (node_id, dest)
        self._status[key] = status
        self._hops[key] = hops
        self.transitions.append((t, node_id, dest, status, hops))


class DataPlaneJsonlSink:
    """Append data-plane records (plain dicts) to a JSONL file.

    The dict-based sibling of :class:`repro.sim.trace.JsonlSink` (which
    serializes :class:`TraceRecord` objects): ``dataplane report`` and
    :func:`repro.analysis.dataplane.analyze_dataplane_file` read these
    files back.  Usable as a context manager; the CLI registers it on
    its ``ExitStack``.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = self.path.open("w", encoding="utf-8")
        self.records_written = 0

    def __call__(self, record: Dict[str, Any]) -> None:
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self.records_written += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "DataPlaneJsonlSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def dataplane_jsonl_sink(path: Union[str, Path]) -> DataPlaneJsonlSink:
    """Convenience constructor mirroring :func:`repro.sim.trace.jsonl_sink`."""
    return DataPlaneJsonlSink(path)
