"""Causal update tracing: who caused which UPDATE, and what it cost.

While a real :class:`~repro.sim.trace.Tracer` is attached, every UPDATE a
speaker puts on the wire carries a network-global monotonically increasing
``uid`` plus the ``cause_uid`` of the received update — or failure-injection
event — whose processing produced it (see :mod:`repro.bgp.messages` and
:meth:`repro.bgp.speaker.BGPSpeaker._send`).  Each send is also emitted as a
``causality`` trace record, and failure injections emit a root record of
their own, so a trace contains the full cause *forest* of a run:

    failure ──> withdrawal at survivor A ──> re-advertisement at B ──> ...

:class:`CausalGraph` rebuilds that forest from a record stream (in-memory
``TraceRecord`` objects or dicts loaded from a JSONL trace) and answers the
questions the paper's figures cannot: how deep do cascades run, which nodes
amplify churn, and how many updates were wasted work (superseded by a later
update for the same (sender, peer, destination) before convergence).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.sim.trace import TraceRecord

#: Causality-record kinds that start a cause chain.
ROOT_KINDS = ("failure", "link_failure")


@dataclass(frozen=True)
class CausalEvent:
    """One node of the cause forest: a sent UPDATE or a failure injection."""

    uid: int
    kind: str  # "send", "failure" or "link_failure"
    time: float
    node: Optional[int]  # sending router; None for failure injections
    cause_uid: int  # -1 = no traced cause (e.g. warm-up origination)
    dest: Optional[int]  # destination prefix ("send" only)
    peer: Optional[int]  # receiving router ("send" only)
    #: Advertised AS path (None = withdrawal) for sends; the failed node
    #: ids / link endpoints for failure roots.
    payload: Any = None

    @property
    def is_root_kind(self) -> bool:
        return self.kind in ROOT_KINDS

    @property
    def is_withdrawal(self) -> bool:
        return self.kind == "send" and self.payload is None


def _record_fields(record: Union[TraceRecord, Dict[str, Any]]):
    """``(time, category, node, detail)`` from either record shape."""
    if isinstance(record, dict):
        return (
            record["time"],
            record["category"],
            record.get("node"),
            record.get("detail", ()),
        )
    return record.time, record.category, record.node, record.detail


def _as_path(value: Any) -> Optional[Tuple[int, ...]]:
    """Normalize a JSON-round-tripped AS path back to a tuple."""
    if value is None:
        return None
    return tuple(value)


def load_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load a JSONL trace written by :class:`~repro.sim.trace.JsonlSink`.

    Blank lines are skipped; a malformed (e.g. truncated) line raises
    ``ValueError`` naming the line number — with the CLI's deterministic
    sink flushing this only happens for traces cut short externally.
    """
    records: List[Dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed trace line ({exc})"
                ) from None
    return records


class CausalGraph:
    """The cause forest of one traced run.

    Events are keyed by uid; each has at most one cause, so the structure
    is a forest whose roots are failure injections and cause-less sends
    (warm-up originations).  All derived statistics are computed lazily
    and cached.
    """

    def __init__(self, events: Sequence[CausalEvent]) -> None:
        self.events: Dict[int, CausalEvent] = {e.uid: e for e in events}
        self.children: Dict[int, List[int]] = {}
        for event in self.events.values():
            if event.cause_uid in self.events:
                self.children.setdefault(event.cause_uid, []).append(
                    event.uid
                )
        self._depths: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls, records: Iterable[Union[TraceRecord, Dict[str, Any]]]
    ) -> "CausalGraph":
        """Build from a trace stream, ignoring non-causality records."""
        events: List[CausalEvent] = []
        for record in records:
            time, category, node, detail = _record_fields(record)
            if category != "causality":
                continue
            kind, uid, cause_uid, dest, peer, payload = detail
            if kind == "send":
                payload = _as_path(payload)
            elif payload is not None:
                payload = tuple(payload)
            events.append(
                CausalEvent(
                    uid=uid,
                    kind=kind,
                    time=time,
                    node=node,
                    cause_uid=cause_uid,
                    dest=dest,
                    peer=peer,
                    payload=payload,
                )
            )
        return cls(events)

    @classmethod
    def from_jsonl(cls, path: Union[str, Path]) -> "CausalGraph":
        return cls.from_records(load_trace(path))

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    @property
    def sends(self) -> List[CausalEvent]:
        return [e for e in self.events.values() if e.kind == "send"]

    @property
    def roots(self) -> List[CausalEvent]:
        """Events without a traced cause, failure injections first."""
        roots = [
            e
            for e in self.events.values()
            if e.cause_uid not in self.events
        ]
        return sorted(roots, key=lambda e: (not e.is_root_kind, e.uid))

    @property
    def failure_roots(self) -> List[CausalEvent]:
        return [e for e in self.roots if e.is_root_kind]

    def depth(self, uid: int) -> int:
        """Chain length from ``uid`` up to its root (root = depth 0)."""
        return self.depths()[uid]

    def depths(self) -> Dict[int, int]:
        """Depth of every event (computed once, iteratively)."""
        if self._depths is None:
            depths: Dict[int, int] = {}
            for uid in self.events:
                stack = []
                cursor = uid
                while cursor not in depths:
                    stack.append(cursor)
                    cause = self.events[cursor].cause_uid
                    if cause not in self.events:
                        depths[cursor] = 0
                        stack.pop()
                        break
                    cursor = cause
                for pending in reversed(stack):
                    depths[pending] = depths[self.events[pending].cause_uid] + 1
            self._depths = depths
        return self._depths

    def chain(self, uid: int) -> List[CausalEvent]:
        """The cause chain of ``uid``, root first."""
        chain: List[CausalEvent] = []
        cursor: Optional[int] = uid
        while cursor is not None and cursor in self.events:
            event = self.events[cursor]
            chain.append(event)
            cause = event.cause_uid
            cursor = cause if cause in self.events else None
        chain.reverse()
        return chain

    def longest_chains(self, k: int = 3) -> List[List[CausalEvent]]:
        """The ``k`` deepest cause chains, deepest first."""
        depths = self.depths()
        deepest = sorted(depths, key=lambda u: (-depths[u], u))[:k]
        return [self.chain(uid) for uid in deepest]

    def cascade_size(self, root_uid: int) -> int:
        """Number of descendant events of ``root_uid`` (excluding it)."""
        count = 0
        frontier = list(self.children.get(root_uid, ()))
        while frontier:
            uid = frontier.pop()
            count += 1
            frontier.extend(self.children.get(uid, ()))
        return count

    # ------------------------------------------------------------------
    # Distributions
    # ------------------------------------------------------------------
    def depth_histogram(self) -> Dict[int, int]:
        """depth -> number of events at that depth."""
        histogram: Dict[int, int] = {}
        for depth in self.depths().values():
            histogram[depth] = histogram.get(depth, 0) + 1
        return dict(sorted(histogram.items()))

    def width_histogram(self) -> Dict[int, int]:
        """fan-out (direct children) -> number of events with that fan-out."""
        histogram: Dict[int, int] = {}
        for uid in self.events:
            width = len(self.children.get(uid, ()))
            histogram[width] = histogram.get(width, 0) + 1
        return dict(sorted(histogram.items()))

    def amplification(self) -> Dict[int, float]:
        """Per-router churn amplification.

        For each router, the number of updates it sent divided by the
        number of distinct traced causes those sends chain back to — how
        many messages one incoming event turns into at that node.
        Routers whose sends all lack a traced cause report their raw
        send count (pure sources).
        """
        sent: Dict[int, int] = {}
        causes: Dict[int, set] = {}
        for event in self.sends:
            assert event.node is not None
            sent[event.node] = sent.get(event.node, 0) + 1
            if event.cause_uid != -1:
                causes.setdefault(event.node, set()).add(event.cause_uid)
        return {
            node: count / max(1, len(causes.get(node, ())))
            for node, count in sent.items()
        }

    def top_amplifiers(self, k: int = 5) -> List[Tuple[int, float]]:
        """The ``k`` routers with the highest amplification factor."""
        factors = self.amplification()
        ranked = sorted(factors.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]

    def wasted_updates(self) -> Dict[int, int]:
        """Per-router count of superseded (wasted) updates.

        A send is wasted when a later send for the same
        (sender, receiver, destination) triple exists in the trace: the
        earlier message's content never survived to convergence.  This
        is exactly the churn MRAI batching is meant to collapse.
        """
        last_uid: Dict[Tuple[int, int, int], int] = {}
        for event in sorted(self.sends, key=lambda e: (e.time, e.uid)):
            assert event.node is not None
            key = (event.node, event.peer, event.dest)
            last_uid[key] = event.uid
        wasted: Dict[int, int] = {}
        for event in self.sends:
            key = (event.node, event.peer, event.dest)
            if last_uid[key] != event.uid:
                wasted[event.node] = wasted.get(event.node, 0) + 1
        return wasted

    # ------------------------------------------------------------------
    # Roll-up
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """The JSON-ready headline statistics of the forest."""
        depths = self.depths()
        sends = self.sends
        wasted = self.wasted_updates()
        failure_roots = self.failure_roots
        return {
            "events": len(self.events),
            "sends": len(sends),
            "withdrawals": sum(1 for e in sends if e.is_withdrawal),
            "roots": len(self.roots),
            "failure_roots": [
                {
                    "uid": e.uid,
                    "kind": e.kind,
                    "time": e.time,
                    "scope": list(e.payload) if e.payload else [],
                    "cascade": self.cascade_size(e.uid),
                }
                for e in failure_roots
            ],
            "max_chain_depth": max(depths.values(), default=0),
            "depth_histogram": self.depth_histogram(),
            "width_histogram": self.width_histogram(),
            "wasted_updates": sum(wasted.values()),
            "top_amplifiers": [
                {"node": node, "factor": round(factor, 3)}
                for node, factor in self.top_amplifiers()
            ],
        }
