"""Observability layer: metrics, probes, profiling, manifests, exporters.

The package the ROADMAP's perf work stands on: every signal the paper's
dynamic-MRAI argument rests on (unfinished work, queue depth, MRAI ladder
level) is exposed as a per-node time series; every run can emit a metrics
registry, a provenance manifest with wall-clock phase timings, and an
event-loop hotspot profile.  See docs/OBSERVABILITY.md for the catalogue.
"""

from repro.obs.causality import CausalEvent, CausalGraph, load_trace
from repro.obs.dataplane import (
    DataPlaneJsonlSink,
    DataPlaneMonitor,
    dataplane_jsonl_sink,
)
from repro.obs.live import (
    LiveMonitor,
    default_progress,
    last_heartbeat,
    live_progress,
    watch_campaign,
)
from repro.obs.manifest import PhaseTiming, RunManifest, host_fingerprint
from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    CounterMetric,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metric_name,
)
from repro.obs.probes import AggregateSample, NetworkProbe, NodeSample, percentile
from repro.obs.profiling import EventLoopProfiler, HandlerStats, handler_category
from repro.obs.export import (
    write_aggregates_csv,
    write_jsonl,
    write_manifest,
    write_metrics_jsonl,
    write_timeseries_csv,
)
from repro.obs.session import ObsSession, active_session, observe
from repro.obs.spans import (
    NOOP_SPAN,
    RollupRow,
    Span,
    SpanRecorder,
    record_spans,
    span,
    traced,
)

__all__ = [
    "AggregateSample",
    "CausalEvent",
    "CausalGraph",
    "CounterMetric",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "DataPlaneJsonlSink",
    "DataPlaneMonitor",
    "EventLoopProfiler",
    "Gauge",
    "HandlerStats",
    "Histogram",
    "LiveMonitor",
    "MetricsRegistry",
    "NOOP_SPAN",
    "NetworkProbe",
    "NodeSample",
    "ObsSession",
    "PhaseTiming",
    "RollupRow",
    "RunManifest",
    "Span",
    "SpanRecorder",
    "active_session",
    "dataplane_jsonl_sink",
    "default_progress",
    "format_metric_name",
    "handler_category",
    "host_fingerprint",
    "last_heartbeat",
    "live_progress",
    "load_trace",
    "observe",
    "percentile",
    "record_spans",
    "span",
    "traced",
    "watch_campaign",
    "write_aggregates_csv",
    "write_jsonl",
    "write_manifest",
    "write_metrics_jsonl",
    "write_timeseries_csv",
]
