"""The observation session: one object that bundles the whole obs layer.

:class:`ObsSession` owns a :class:`~repro.obs.metrics.MetricsRegistry`, an
optional :class:`~repro.obs.profiling.EventLoopProfiler`, the per-trial
:class:`~repro.obs.probes.NetworkProbe` instances, phase timings and the
final :class:`~repro.obs.manifest.RunManifest`.  The experiment layer only
ever talks to the session:

* :func:`repro.core.experiment.run_experiment` accepts ``obs=`` and calls
  :meth:`attach` / :meth:`on_failure` / :meth:`record_phase` /
  :meth:`note_trial` at the right points;
* deeper call stacks (figure sweeps) are reached through the *active
  session*: ``with observe(session): compute_figure(...)`` makes every
  experiment run inside the block pick the session up implicitly.

``ObsSession.export(dir)`` then writes ``manifest.json``,
``metrics.jsonl``, ``timeseries.csv`` and ``aggregates.csv`` (plus
``profile.txt`` when profiling).
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Union,
)

from repro.obs.export import (
    write_aggregates_csv,
    write_metrics_jsonl,
    write_timeseries_csv,
)
from repro.obs.manifest import PhaseTiming, RunManifest, jsonable
from repro.obs.metrics import MetricsRegistry
from repro.obs.probes import NetworkProbe, ProbeData
from repro.obs.profiling import EventLoopProfiler
from repro.obs.spans import SpanRecorder, record_spans, span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bgp.network import BGPNetwork
    from repro.obs.dataplane import DataPlaneMonitor
    from repro.sim.trace import TraceRecord, Tracer

#: Categories a session tracer records by default: exactly what the
#: causal/convergence analysis consumes.
DEFAULT_TRACE_CATEGORIES = frozenset({"causality", "route_change"})

#: Stack of active sessions; the innermost one wins.
_ACTIVE: List["ObsSession"] = []


def active_session() -> Optional["ObsSession"]:
    """The session installed by the innermost :func:`observe` block."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def observe(session: "ObsSession"):
    """Make ``session`` the implicit obs sink for nested experiment runs.

    When the session records spans, its recorder is installed as the
    active one for the block, so instrumented orchestration code
    (:func:`repro.obs.spans.span` call sites) reports to it implicitly.
    """
    _ACTIVE.append(session)
    try:
        if session.span_recorder is not None:
            with record_spans(session.span_recorder):
                yield session
        else:
            yield session
    finally:
        _ACTIVE.pop()


class ObsSession:
    """Everything observed about one run (or one sweep of runs).

    Parameters
    ----------
    sample_interval:
        When set, each attached network gets a :class:`NetworkProbe` with
        this simulated-seconds period.
    profile:
        When True, an :class:`EventLoopProfiler` is attached to every
        simulator; statistics accumulate across trials.
    probe_nodes:
        Optional node-id filter for per-node probe rows.
    trace:
        When True, every trial runs with a causal tracer attached
        (:meth:`make_tracer`) and its path-exploration / settle-time
        summary is recorded alongside the delay in the trial snapshot
        and manifest.
    trace_sink:
        Optional per-record callable (e.g. a
        :class:`~repro.sim.trace.JsonlSink`) forwarded to every trial
        tracer; implies ``trace``.
    trace_categories:
        Category filter for trial tracers; defaults to
        ``{"causality", "route_change"}`` (what the analysis consumes).
    trace_max_records:
        In-memory bound per trial tracer (drop-oldest; see
        :class:`~repro.sim.trace.Tracer`).
    spans:
        When True, the session owns a
        :class:`~repro.obs.spans.SpanRecorder`; :func:`observe` installs
        it so instrumented orchestration code records hierarchical
        wall-clock spans, worker sessions round-trip theirs home, and
        :meth:`export` writes ``spans.json`` (Chrome trace format).
    dataplane:
        When True, every attached network gets a
        :class:`~repro.obs.dataplane.DataPlaneMonitor`; the trial's
        unavailability summary lands on ``TrialResult.dataplane``, the
        trial snapshot, and the manifest rollup.  Trajectory-neutral
        (the monitor only reads simulator state).
    dataplane_sink:
        Optional per-record callable (e.g. a
        :class:`~repro.obs.dataplane.DataPlaneJsonlSink`) receiving
        every transition record plus per-trial ``dataplane_trial``
        delimiters, for offline ``dataplane report``; implies
        ``dataplane``.
    """

    def __init__(
        self,
        sample_interval: Optional[float] = None,
        profile: bool = False,
        probe_nodes: Optional[Sequence[int]] = None,
        trace: bool = False,
        trace_sink: Optional[Callable[["TraceRecord"], None]] = None,
        trace_categories: Optional[Set[str]] = None,
        trace_max_records: Optional[int] = None,
        spans: bool = False,
        dataplane: bool = False,
        dataplane_sink: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        if sample_interval is not None and sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.registry = MetricsRegistry()
        self.sample_interval = sample_interval
        self.probe_nodes = probe_nodes
        self.trace = bool(trace) or trace_sink is not None
        self.trace_sink = trace_sink
        self.trace_categories = (
            set(trace_categories)
            if trace_categories is not None
            else set(DEFAULT_TRACE_CATEGORIES)
        )
        self.trace_max_records = trace_max_records
        #: Per-trial exploration summaries (ConvergenceTimeline.summary()).
        self.exploration_summaries: List[Dict[str, Any]] = []
        self.last_exploration: Optional[Dict[str, Any]] = None
        self._tracer: Optional["Tracer"] = None
        self.profiler: Optional[EventLoopProfiler] = (
            EventLoopProfiler() if profile else None
        )
        #: Hierarchical wall-clock spans (None = span recording off).
        self.span_recorder: Optional[SpanRecorder] = (
            SpanRecorder() if spans else None
        )
        self.probes: List[NetworkProbe] = []
        self.phases: List[PhaseTiming] = []
        self.trial_snapshots: List[Dict[str, Any]] = []
        self.manifest: Optional[RunManifest] = None
        self._trial_index = -1
        #: Trial-cache outcomes observed via :meth:`note_cache` (also
        #: mirrored into the registry as ``store_cache_hits`` /
        #: ``store_cache_misses`` counters).
        self.cache_hits = 0
        self.cache_misses = 0
        #: Manifests of campaigns run under this session (name, payload).
        self.campaigns: List[Dict[str, Any]] = []
        self._last_spec: Any = None
        self._seeds: List[int] = []
        self._last_topology: str = ""
        self._last_counters: Dict[str, Any] = {}
        #: Raw trace records captured for the parent (worker sessions
        #: built by :meth:`for_worker` with ``capture_trace`` only).
        self._captured_trace: Optional[List["TraceRecord"]] = None
        self.dataplane_enabled = bool(dataplane) or dataplane_sink is not None
        self.dataplane_sink = dataplane_sink
        #: Per-trial data-plane impact summaries (headline dicts).
        self.dataplane_summaries: List[Dict[str, Any]] = []
        self.last_dataplane: Optional[Dict[str, Any]] = None
        self._dataplane_monitor: Optional["DataPlaneMonitor"] = None
        #: Raw data-plane records captured for the parent (worker
        #: sessions with ``capture_dataplane`` only).
        self._captured_dataplane: Optional[List[Dict[str, Any]]] = None

    # ------------------------------------------------------------------
    # Hooks called by the experiment layer
    # ------------------------------------------------------------------
    @property
    def trial_index(self) -> int:
        """Index of the trial currently attached (-1 before the first)."""
        return self._trial_index

    @property
    def probe(self) -> Optional[NetworkProbe]:
        """The probe of the most recently attached network, if any."""
        return self.probes[-1] if self.probes else None

    def make_tracer(self) -> Optional["Tracer"]:
        """A fresh causal tracer for the next trial, or None if untraced.

        The experiment layer calls this while *constructing* the trial's
        network (the tracer must exist before the simulator does); the
        session holds on to it so :meth:`note_trial` can fold the trial's
        exploration statistics once the run finishes.
        """
        if not self.trace:
            return None
        from repro.sim.trace import Tracer

        self._tracer = Tracer(
            categories=self.trace_categories,
            sink=self.trace_sink,
            max_records=self.trace_max_records,
        )
        return self._tracer

    def attach(self, network: "BGPNetwork") -> None:
        """Wire this session into a freshly built network (one per trial)."""
        self._trial_index += 1
        if self.profiler is not None:
            self.profiler.attach(network.sim)
        if self.sample_interval is not None:
            probe = NetworkProbe(
                network, self.sample_interval, nodes=self.probe_nodes
            )
            probe.start()
            self.probes.append(probe)
        if self.dataplane_enabled:
            from repro.obs.dataplane import DataPlaneMonitor

            monitor = DataPlaneMonitor()
            monitor.attach(network)
            self._dataplane_monitor = monitor

    def on_failure(self, network: "BGPNetwork") -> None:
        """Re-arm the probe after failure injection (it detaches at
        quiescence, which the end of warm-up is)."""
        probe = self.probe
        if probe is not None and probe.network is network:
            probe.start()

    def record_phase(
        self,
        name: str,
        wall_seconds: float,
        sim_seconds: float = 0.0,
        events: int = 0,
    ) -> None:
        label = name if self._trial_index <= 0 else f"{name}[{self._trial_index}]"
        self.phases.append(
            PhaseTiming(label, wall_seconds, sim_seconds, events)
        )

    def note_trial(
        self,
        *,
        spec: Any,
        seed: int,
        topology: str,
        counters: Dict[str, Any],
        result: Any = None,
    ) -> None:
        """Record one finished trial's context and metric snapshot."""
        self._last_spec = spec
        self._seeds.append(seed)
        self._last_topology = topology
        self._last_counters = dict(counters)
        snapshot: Dict[str, Any] = {
            "kind": "trial",
            "trial": self._trial_index,
            "seed": seed,
            "counters": dict(counters),
        }
        if result is not None:
            snapshot["convergence_delay"] = result.convergence_delay
            snapshot["messages_sent"] = result.messages_sent
            snapshot["warmup_wall"] = result.warmup_wall
            snapshot["convergence_wall"] = result.convergence_wall
        if self._tracer is not None:
            # Fold the trial's causal trace into exploration analytics,
            # then release the records (the sink, if any, has them all).
            from repro.analysis.convergence import ConvergenceTimeline

            t0 = result.failure_time if result is not None else None
            timeline = ConvergenceTimeline.from_records(
                self._tracer.records, t0=t0
            )
            exploration = timeline.summary()
            exploration["trace_dropped"] = self._tracer.dropped
            snapshot["exploration"] = exploration
            self.exploration_summaries.append(exploration)
            self.last_exploration = exploration
            self._tracer.clear()
            self._tracer = None
        if result is not None and getattr(result, "dataplane", None):
            snapshot["dataplane"] = result.dataplane
        self.trial_snapshots.append(snapshot)

    def finish_dataplane(
        self,
        network: "BGPNetwork",
        t0: float,
        seed: Optional[int] = None,
    ) -> Optional[Dict[str, Any]]:
        """Finalize the trial's data-plane monitor and fold its timeline.

        Called by the experiment layer after convergence, before the
        :class:`TrialResult` is built.  Returns the headline summary
        (the ``TrialResult.dataplane`` payload) or None when monitors
        are off.  Transition records stream to :attr:`dataplane_sink`
        (or the worker capture buffer) behind a ``dataplane_trial``
        delimiter so offline reports can split multi-trial files.
        """
        monitor = self._dataplane_monitor
        if monitor is None or network.dataplane is not monitor:
            return None
        end = max(network.last_activity, t0)
        monitor.finalize(end)
        from repro.analysis.dataplane import DataPlaneTimeline

        timeline = DataPlaneTimeline.from_transitions(
            monitor.transitions, t0=t0, end=end
        )
        summary = timeline.headline()
        self.dataplane_summaries.append(summary)
        self.last_dataplane = summary
        meta: Dict[str, Any] = {
            "kind": "dataplane_trial",
            "trial": self._trial_index,
            "t0": t0,
            "end": end,
        }
        if seed is not None:
            meta["seed"] = seed
        if self.dataplane_sink is not None:
            self.dataplane_sink(meta)
            for record in monitor.records():
                self.dataplane_sink(record)
        elif self._captured_dataplane is not None:
            self._captured_dataplane.append(meta)
            self._captured_dataplane.extend(monitor.records())
        network.dataplane = None
        self._dataplane_monitor = None
        return summary

    def note_cache(self, hit: bool) -> None:
        """Record one trial-cache lookup outcome (store-backed runs)."""
        if hit:
            self.cache_hits += 1
            self.registry.counter("store_cache_hits").inc()
        else:
            self.cache_misses += 1
            self.registry.counter("store_cache_misses").inc()

    def note_campaign(self, name: str, manifest: Dict[str, Any]) -> None:
        """Attach one campaign run's manifest to this session."""
        self.campaigns.append({"name": name, "manifest": manifest})

    def counters_snapshot(self) -> Dict[str, Any]:
        """The session's headline counters as one plain dict.

        What the campaign service's ``/health`` endpoint reports for the
        daemon's lifetime session: cache traffic, trials observed, and
        campaign count — cheap enough to read on every poll.
        """
        looked_up = self.cache_hits + self.cache_misses
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": (
                round(self.cache_hits / looked_up, 4) if looked_up else 0.0
            ),
            "trials_observed": self._trial_index + 1,
            "campaigns": len(self.campaigns),
        }

    # ------------------------------------------------------------------
    # Worker round-trip (parallel trial execution)
    # ------------------------------------------------------------------
    def worker_args(self) -> Dict[str, Any]:
        """A picklable recipe for building equivalent worker sessions.

        The parallel backend (:mod:`repro.core.parallel`) ships this to
        each worker process, where :meth:`for_worker` rebuilds a session
        observing exactly what this one would have observed inline.  The
        trace sink itself cannot cross the process boundary, so when one
        is installed the recipe asks workers to *capture* raw records for
        replay into the parent's sink by :meth:`absorb`.
        """
        return {
            "sample_interval": self.sample_interval,
            "profile": self.profiler is not None,
            "probe_nodes": (
                list(self.probe_nodes) if self.probe_nodes is not None else None
            ),
            "trace": self.trace,
            "trace_categories": sorted(self.trace_categories),
            "trace_max_records": self.trace_max_records,
            "capture_trace": self.trace_sink is not None,
            "spans": self.span_recorder is not None,
            "dataplane": self.dataplane_enabled,
            "capture_dataplane": self.dataplane_sink is not None,
        }

    @classmethod
    def for_worker(cls, config: Dict[str, Any]) -> "ObsSession":
        """Build a worker-local session from a :meth:`worker_args` recipe."""
        captured: Optional[List["TraceRecord"]] = (
            [] if config.get("capture_trace") else None
        )
        session = cls(
            sample_interval=config.get("sample_interval"),
            profile=bool(config.get("profile")),
            probe_nodes=config.get("probe_nodes"),
            trace=bool(config.get("trace")),
            trace_sink=captured.append if captured is not None else None,
            trace_categories=(
                set(config["trace_categories"])
                if config.get("trace_categories") is not None
                else None
            ),
            trace_max_records=config.get("trace_max_records"),
            spans=bool(config.get("spans")),
            dataplane=bool(config.get("dataplane")),
        )
        session._captured_trace = captured
        if config.get("capture_dataplane"):
            session._captured_dataplane = []
        return session

    def worker_payload(self) -> Dict[str, Any]:
        """Everything this (single-trial) worker session observed.

        Returned as plain picklable data; the parent session folds it in
        with :meth:`absorb`.  Phase names are raw (``warmup`` etc.)
        because a worker session only ever sees trial 0 — the parent
        relabels them with the global trial index.

        Sections the session never recorded (no profiler, no probes, no
        trace sink, …) are pruned before pickling — :meth:`absorb` reads
        every key with a default, so an absent section and an empty one
        fold identically, and the cross-process message stays as small
        as what was actually observed.
        """
        payload = {
            "seed": self._seeds[-1] if self._seeds else None,
            "spec": self._last_spec,
            "topology": self._last_topology,
            "counters": dict(self._last_counters),
            "snapshots": list(self.trial_snapshots),
            "phases": [
                (p.name, p.wall_seconds, p.sim_seconds, p.events)
                for p in self.phases
            ],
            "explorations": list(self.exploration_summaries),
            "metrics": self.registry.records(),
            "profile": (
                self.profiler.records() if self.profiler is not None else []
            ),
            "probes": [
                (list(p.node_samples), list(p.aggregates))
                for p in self.probes
            ],
            "trace_records": self._captured_trace,
            "spans": (
                list(self.span_recorder.records)
                if self.span_recorder is not None
                else []
            ),
            "dataplane": list(self.dataplane_summaries),
            "dataplane_records": self._captured_dataplane,
        }
        return {
            key: value
            for key, value in payload.items()
            if value or key in ("seed", "spec")
        }

    def absorb(self, payload: Dict[str, Any]) -> None:
        """Fold one worker trial's payload into this (parent) session.

        Called in seed order by the experiment layer, so trial indices,
        gauge final values and trace replay order all match what the
        inline serial path would have produced.
        """
        self._trial_index += 1
        index = self._trial_index
        seed = payload.get("seed")
        if seed is not None:
            self._seeds.append(seed)
        if payload.get("spec") is not None:
            self._last_spec = payload["spec"]
        if payload.get("topology"):
            self._last_topology = payload["topology"]
        if payload.get("counters"):
            self._last_counters = dict(payload["counters"])
        for name, wall, sim_seconds, events in payload.get("phases", ()):
            label = name if index <= 0 else f"{name}[{index}]"
            self.phases.append(
                PhaseTiming(label, wall, sim_seconds, events)
            )
        for snapshot in payload.get("snapshots", ()):
            renumbered = dict(snapshot)
            renumbered["trial"] = index
            self.trial_snapshots.append(renumbered)
        for exploration in payload.get("explorations", ()):
            self.exploration_summaries.append(exploration)
            self.last_exploration = exploration
        self.registry.absorb_records(payload.get("metrics", ()))
        if self.profiler is not None:
            self.profiler.absorb_records(payload.get("profile", ()))
        for node_samples, aggregates in payload.get("probes", ()):
            self.probes.append(ProbeData(node_samples, aggregates))
        if self.trace_sink is not None:
            for record in payload.get("trace_records") or ():
                self.trace_sink(record)
        if self.span_recorder is not None:
            # Worker spans graft under "workers/" so the rollup keeps
            # parent orchestration time and worker busy time apart.
            self.span_recorder.absorb_records(
                payload.get("spans") or (), prefix="workers"
            )
        for summary in payload.get("dataplane") or ():
            self.dataplane_summaries.append(summary)
            self.last_dataplane = summary
        if self.dataplane_sink is not None:
            for record in payload.get("dataplane_records") or ():
                if record.get("kind") == "dataplane_trial":
                    # Worker trial indices are all 0; relabel with the
                    # parent's, like phase names and snapshots above.
                    record = dict(record, trial=index)
                self.dataplane_sink(record)

    # ------------------------------------------------------------------
    # Finalization + export
    # ------------------------------------------------------------------
    def finalize(
        self,
        *,
        kind: str = "repro-run",
        command: str = "",
        spec: Any = None,
        seeds: Optional[List[int]] = None,
        topology: str = "",
        extra: Optional[Dict[str, Any]] = None,
    ) -> RunManifest:
        """Build (and remember) the manifest for this session."""
        spec = spec if spec is not None else self._last_spec
        if seeds is None:
            # Every seed observed, in trial order, deduplicated (sweeps
            # reuse the same seed list across points).
            seeds = list(dict.fromkeys(self._seeds))
        manifest = RunManifest.create(
            kind=kind,
            command=command,
            spec=spec,
            seeds=seeds,
            topology=topology or self._last_topology,
            phases=list(self.phases),
            counters=dict(self._last_counters),
            extra=extra,
        )
        manifest.extra.setdefault("trials", self._trial_index + 1)
        if self.profiler is not None:
            manifest.extra.setdefault(
                "profiled_events", self.profiler.total_events
            )
            # Throughput inline, so BENCH_sweep.json and the manifest
            # agree on the events/s number without re-deriving it.
            manifest.extra.setdefault(
                "events_per_second",
                round(self.profiler.events_per_second, 1),
            )
            # Top hotspot categories inline, so the heaviest handlers
            # are visible without opening profile.txt.
            manifest.extra.setdefault(
                "profile_top", self.profiler.top_categories(5)
            )
        if self.span_recorder is not None and len(self.span_recorder):
            manifest.extra.setdefault(
                "spans",
                {
                    "count": len(self.span_recorder),
                    "wall_seconds": round(
                        self.span_recorder.wall_seconds, 6
                    ),
                },
            )
        if self.exploration_summaries:
            manifest.extra.setdefault(
                "exploration", self.exploration_aggregate()
            )
        if self.dataplane_summaries:
            manifest.extra.setdefault(
                "dataplane", self.dataplane_aggregate()
            )
        if self.cache_hits or self.cache_misses:
            manifest.extra.setdefault(
                "store_cache",
                {"hits": self.cache_hits, "misses": self.cache_misses},
            )
        if self.campaigns:
            manifest.extra.setdefault("campaigns", jsonable(self.campaigns))
        self.manifest = manifest
        return manifest

    def exploration_aggregate(self) -> Dict[str, Any]:
        """Exploration counts rolled up across every traced trial."""
        summaries = self.exploration_summaries
        totals = [s["paths_explored_total"] for s in summaries]
        return {
            "trials": len(summaries),
            "paths_explored_total": sum(totals),
            "paths_explored_max_trial": max(totals, default=0),
            "route_changes_total": sum(
                s["route_changes"] for s in summaries
            ),
            "settle_p95_max": max(
                (s["settle"]["p95"] for s in summaries), default=0.0
            ),
        }

    def dataplane_aggregate(self) -> Dict[str, Any]:
        """Data-plane impact rolled up across every monitored trial."""
        summaries = self.dataplane_summaries
        totals = [s["unreachable_seconds_total"] for s in summaries]
        return {
            "trials": len(summaries),
            "unreachable_seconds_total": round(sum(totals), 6),
            "unreachable_seconds_max_trial": round(
                max(totals, default=0.0), 6
            ),
            "loop_episodes": sum(s["loop_episodes"] for s in summaries),
            "blackhole_episodes": sum(
                s["blackhole_episodes"] for s in summaries
            ),
            "pairs_never_recovered_max": max(
                (s["pairs_never_recovered"] for s in summaries), default=0
            ),
        }

    def export(
        self, directory: Union[str, Path], command: str = ""
    ) -> List[Path]:
        """Write every artifact this session holds; returns the paths."""
        with span("obs.export"):
            directory = Path(directory)
            directory.mkdir(parents=True, exist_ok=True)
            if self.manifest is None:
                self.finalize(command=command)
            assert self.manifest is not None
            written = [self.manifest.save(directory / "manifest.json")]
            extra_records: List[Dict[str, Any]] = list(self.trial_snapshots)
            if self.profiler is not None:
                extra_records.extend(self.profiler.records())
            written.append(
                write_metrics_jsonl(
                    self.registry, directory / "metrics.jsonl", extra_records
                )
            )
            written.append(
                write_timeseries_csv(
                    self.probes, directory / "timeseries.csv"
                )
            )
            written.append(
                write_aggregates_csv(
                    self.probes, directory / "aggregates.csv"
                )
            )
            if self.profiler is not None:
                profile_path = directory / "profile.txt"
                profile_path.write_text(
                    self.profiler.render() + "\n", encoding="utf-8"
                )
                written.append(profile_path)
        if self.span_recorder is not None and len(self.span_recorder):
            # Written after the export span closes so the trace contains
            # its own export cost.
            written.append(
                self.span_recorder.write_chrome_trace(
                    directory / "spans.json"
                )
            )
        return written

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ObsSession trials={self._trial_index + 1} "
            f"metrics={len(self.registry)} probes={len(self.probes)} "
            f"profile={self.profiler is not None}>"
        )
