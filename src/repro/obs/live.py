"""Live campaign/sweep telemetry: status line, heartbeat stream, watch.

Long grids used to run dark: the only signals were per-trial
:class:`~repro.core.experiment.Progress` ticks a caller had to wire up
itself, and the store's counters after the fact.  This module adds the
operator-facing layer:

* :class:`LiveMonitor` — a :data:`~repro.core.experiment.ProgressFn`
  that renders a terminal status line (trials done/cached/failed, store
  hit rate, worker utilization, ETA extrapolated from completed-trial
  wall times) and optionally appends one JSON line per tick to a
  *heartbeat* file other processes can tail;
* :func:`live_progress` / :func:`default_progress` — a process-wide
  default progress hook, the same scoping pattern as
  :func:`repro.core.parallel.parallel_jobs`: installing a monitor once
  makes every sweep buried inside the figure harness report to it;
* :func:`watch_campaign` — the render behind ``repro-bgp campaign
  watch``: per-cell cached/missing/failed counts against the store plus
  the latest heartbeat, re-renderable until the grid completes.

The ETA here is *wall-time based*: completed trials report their
simulation wall seconds through :attr:`Progress.busy_seconds`, so the
estimate is ``remaining x mean-trial-wall / jobs`` — robust to cached
prefixes (a 90%-cached resume doesn't project the cache-hit rate onto
the cold trials the way elapsed/done would).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    IO,
    Iterator,
    List,
    Optional,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.experiment import Progress
    from repro.obs.session import ObsSession
    from repro.store.campaign import Campaign
    from repro.store.result_store import ResultStore

__all__ = [
    "LiveMonitor",
    "default_progress",
    "last_heartbeat",
    "live_progress",
    "watch_campaign",
]

#: Process-wide default progress hook (None = run silently).  Installed
#: by :func:`live_progress`; consulted by ``run_trials``/``run_campaign``
#: when the caller passes no explicit callback.
_DEFAULT_PROGRESS: Optional[Callable[["Progress"], None]] = None


def default_progress() -> Optional[Callable[["Progress"], None]]:
    """The progress hook installed by the innermost :func:`live_progress`."""
    return _DEFAULT_PROGRESS


@contextmanager
def live_progress(
    fn: Callable[["Progress"], None]
) -> Iterator[Callable[["Progress"], None]]:
    """Scope the default progress hook to a ``with`` block.

    This is how ``sweep --progress`` reaches the ``run_trials`` calls
    buried inside the figure harness without threading a callback
    through thirteen figure modules.
    """
    global _DEFAULT_PROGRESS
    previous = _DEFAULT_PROGRESS
    _DEFAULT_PROGRESS = fn
    try:
        yield fn
    finally:
        _DEFAULT_PROGRESS = previous


class LiveMonitor:
    """Terminal status line + heartbeat JSONL from progress ticks.

    Call the monitor as a progress function (it *is* one); call
    :meth:`finish` when the run ends to terminate the status line and
    flush/close the heartbeat file.

    Parameters
    ----------
    jobs:
        Worker count of the run (for the utilization denominator).
    session:
        Optional :class:`~repro.obs.session.ObsSession` supplying
        cache hit/miss counters (without one, cached counts read 0
        unless the ticks carry a ``(cached)`` label).
    stream:
        Where the status line goes (default ``sys.stderr``; pass None
        for heartbeat-only monitoring with no terminal output).  On a
        TTY the line redraws in place with ``\\r``; otherwise one line
        per render.
    heartbeat:
        Optional path: every render appends one JSON object line with
        the full telemetry snapshot (see :meth:`snapshot`).
    interval:
        Minimum seconds between renders (0 = render every tick).
    """

    #: Default-stream sentinel: resolves to ``sys.stderr`` at call time
    #: (not import time), so captured/redirected stderr is respected.
    _DEFAULT_STREAM: Any = object()

    def __init__(
        self,
        *,
        jobs: int = 1,
        session: Optional["ObsSession"] = None,
        stream: Any = _DEFAULT_STREAM,
        heartbeat: Optional[Union[str, Path]] = None,
        interval: float = 0.0,
        label: str = "",
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.session = session
        self.stream = (
            sys.stderr if stream is LiveMonitor._DEFAULT_STREAM else stream
        )
        self.interval = interval
        self.label = label
        self.last: Optional["Progress"] = None
        self.renders = 0
        self._last_render: Optional[float] = None
        self._heartbeat_path = Path(heartbeat) if heartbeat else None
        self._heartbeat_file: Optional[IO[str]] = None
        self._finished = False
        # The campaign service reads snapshot() from HTTP handler
        # threads while the executor thread ticks update(); a reentrant
        # lock (render calls snapshot) keeps the telemetry consistent.
        self._mutex = threading.RLock()

    # ------------------------------------------------------------------
    def __call__(self, progress: "Progress") -> None:
        self.update(progress)

    def update(self, progress: "Progress") -> None:
        """Fold one progress tick; render unless inside the min interval."""
        with self._mutex:
            self.last = progress
            now = time.monotonic()
            final = progress.done >= progress.total
            if (
                not final
                and self.interval
                and self._last_render is not None
                and now - self._last_render < self.interval
            ):
                return
            self._last_render = now
            self.render()

    # -- derived telemetry ---------------------------------------------
    @property
    def cached(self) -> int:
        return self.session.cache_hits if self.session is not None else 0

    @property
    def failed(self) -> int:
        return self.last.failed if self.last is not None else 0

    def hit_rate(self) -> float:
        if self.session is None:
            return 0.0
        looked_up = self.session.cache_hits + self.session.cache_misses
        return self.session.cache_hits / looked_up if looked_up else 0.0

    def utilization(self) -> float:
        """Fraction of worker capacity spent simulating (busy / jobs x
        elapsed)."""
        if self.last is None or self.last.elapsed <= 0:
            return 0.0
        return min(
            1.0, self.last.busy_seconds / (self.last.elapsed * self.jobs)
        )

    def eta_seconds(self) -> float:
        """Remaining wall-clock estimate from completed-trial wall times.

        Falls back to the tick's elapsed/done extrapolation when no
        trial wall times have been reported (e.g. an all-cached run).
        """
        if self.last is None:
            return float("inf")
        remaining = self.last.total - self.last.done
        if remaining <= 0:
            return 0.0
        executed = self.last.done - self.cached
        if self.last.busy_seconds > 0 and executed > 0:
            return remaining * (self.last.busy_seconds / executed) / self.jobs
        if self.last.done > 0 and self.last.elapsed > 0:
            return self.last.eta
        # First heartbeat (nothing completed yet, or only cached hits
        # with no wall times): no basis for an estimate.
        return float("inf")

    def snapshot(self) -> Dict[str, Any]:
        """The full telemetry record (one heartbeat line's payload)."""
        with self._mutex:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> Dict[str, Any]:
        progress = self.last
        eta = self.eta_seconds()
        return {
            "kind": "heartbeat",
            "ts": time.time(),
            "label": (progress.label if progress else "") or self.label,
            "done": progress.done if progress else 0,
            "total": progress.total if progress else 0,
            "cached": self.cached,
            "failed": self.failed,
            "hit_rate": round(self.hit_rate(), 4),
            "elapsed_seconds": round(progress.elapsed, 3) if progress else 0.0,
            "busy_seconds": (
                round(progress.busy_seconds, 3) if progress else 0.0
            ),
            "jobs": self.jobs,
            "utilization": round(self.utilization(), 4),
            "eta_seconds": (
                round(eta, 1) if eta != float("inf") else None
            ),
        }

    def status_line(self) -> str:
        progress = self.last
        if progress is None:
            return "waiting for first trial..."
        eta = self.eta_seconds()
        eta_text = "?" if eta == float("inf") else f"{eta:.0f}s"
        parts = [
            f"[{progress.done}/{progress.total}]",
            progress.label or self.label,
            f"cached {self.cached}",
        ]
        if self.failed:
            parts.append(f"failed {self.failed}")
        if self.session is not None:
            parts.append(f"hit {self.hit_rate():.0%}")
        if self.jobs > 1:
            parts.append(f"util {self.utilization():.0%}")
        parts.append(f"elapsed {progress.elapsed:.0f}s")
        parts.append(f"eta {eta_text}")
        return " ".join(p for p in parts if p)

    # ------------------------------------------------------------------
    def render(self) -> None:
        with self._mutex:
            line = self.status_line()
            if self.stream is not None:
                if self.stream.isatty():
                    self.stream.write("\r\x1b[2K" + line)
                else:
                    self.stream.write(line + "\n")
                self.stream.flush()
            self._write_heartbeat()
            self.renders += 1

    def _write_heartbeat(self) -> None:
        if self._heartbeat_path is None:
            return
        if self._heartbeat_file is None:
            if self._heartbeat_path.parent != Path(""):
                self._heartbeat_path.parent.mkdir(
                    parents=True, exist_ok=True
                )
            self._heartbeat_file = self._heartbeat_path.open(
                "a", encoding="utf-8"
            )
        self._heartbeat_file.write(
            json.dumps(self._snapshot_locked(), sort_keys=True) + "\n"
        )
        self._heartbeat_file.flush()

    def finish(self) -> None:
        """Terminate the status line and close the heartbeat file."""
        with self._mutex:
            if self._finished:
                return
            self._finished = True
            if self.last is not None and self.stream is not None:
                if self.stream.isatty():
                    self.stream.write("\n")
                self.stream.flush()
            if self._heartbeat_file is not None:
                self._heartbeat_file.close()
                self._heartbeat_file = None

    def __enter__(self) -> "LiveMonitor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.finish()


def last_heartbeat(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """The most recent parseable heartbeat record in a JSONL file.

    Returns None for a missing/empty file; a truncated trailing line
    (the writer may be mid-append) falls back to the previous one.
    """
    path = Path(path)
    if not path.exists():
        return None
    lines = path.read_text(encoding="utf-8").splitlines()
    for line in reversed(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            return record
    return None


def watch_campaign(
    campaign: "Campaign",
    store: "ResultStore",
    heartbeat: Optional[Union[str, Path]] = None,
) -> str:
    """One render of a campaign's live state (``campaign watch``).

    Per-cell cached/missing/failed counts from the store (so a
    partially-complete grid is debuggable at a glance), the aggregate
    completion bar, and — when a heartbeat file is being written by a
    concurrently running ``campaign run --heartbeat`` — the live ETA /
    utilization line from its latest record.
    """
    from repro.store.campaign import campaign_status

    status = campaign_status(campaign, store)
    fraction = status.cached / status.total if status.total else 1.0
    bar_width = 30
    filled = int(round(fraction * bar_width))
    bar = "#" * filled + "-" * (bar_width - filled)
    lines = [
        f"campaign {status.name}: [{bar}] {fraction:.0%} "
        f"({status.cached}/{status.total} trials cached)",
        status.render(),
    ]
    if heartbeat is not None:
        record = last_heartbeat(heartbeat)
        if record is not None:
            age = time.time() - float(record.get("ts", 0.0))
            eta = record.get("eta_seconds")
            eta_text = "?" if eta is None else f"{eta:.0f}s"
            lines.append(
                f"heartbeat ({age:.0f}s ago): "
                f"[{record.get('done', '?')}/{record.get('total', '?')}] "
                f"util {float(record.get('utilization', 0.0)):.0%} "
                f"eta {eta_text}"
            )
        else:
            lines.append(f"heartbeat: no records yet at {heartbeat}")
    lines.append(
        "status: complete"
        if status.complete
        else f"status: in flight ({status.missing} trials to go)"
    )
    return "\n".join(lines)
