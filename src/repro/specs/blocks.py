"""Declarative blocks for the non-MRAI spec pieces.

* **queue disciplines** — a registry naming every discipline the
  simulator implements, so scheme dicts are checked at parse time
  instead of when the first ``BGPConfig`` is built;
* **damping blocks** — ``{"half_life": 4.0, ...}`` <->
  :class:`~repro.bgp.damping.DampingConfig`;
* **routing-policy blocks** — ``{"kind": "shortest-path"}`` or
  ``{"kind": "gao-rexford", ...}`` <->
  :class:`~repro.bgp.policy.RoutingPolicy`.  Gao-Rexford relationships
  come either inline (``"relationships": [[a, b, rel], ...]``, fully
  self-contained) or inferred from the topology
  (``"infer": "hierarchical"`` / ``"degree"``).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.bgp.damping import DampingConfig
from repro.bgp.policy import (
    ASRelationships,
    GaoRexfordPolicy,
    RoutingPolicy,
    ShortestPathPolicy,
    infer_relationships,
    infer_relationships_hierarchical,
)
from repro.specs.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.topology.graph import Topology

# ---------------------------------------------------------------------------
# Queue disciplines
# ---------------------------------------------------------------------------
QUEUE_DISCIPLINES = Registry("queue discipline")
QUEUE_DISCIPLINES.register("fifo", "process updates strictly in order")
QUEUE_DISCIPLINES.register(
    "dest_batch", "the paper's per-destination batching (Sec 4.4)"
)
QUEUE_DISCIPLINES.register(
    "dest_batch_wf", "per-destination batching, withdrawals first (Sec 5)"
)
QUEUE_DISCIPLINES.register(
    "tcp_batch", "router-style fixed-size TCP-buffer batching"
)


def check_queue_discipline(name: str) -> str:
    """Validate a scheme dict's ``queue`` value at parse time."""
    if name not in QUEUE_DISCIPLINES:
        raise ValueError(
            f"unknown queue discipline {name!r}; "
            f"choose from {QUEUE_DISCIPLINES.names()}"
        )
    return name


# ---------------------------------------------------------------------------
# Damping blocks
# ---------------------------------------------------------------------------
_DAMPING_FIELDS = tuple(f.name for f in dataclasses.fields(DampingConfig))


def build_damping(block: Dict[str, Any]) -> DampingConfig:
    """A :class:`DampingConfig` from its declarative dict."""
    if not isinstance(block, dict):
        raise ValueError(
            f"damping must be a parameter dict or null, got {block!r}"
        )
    unknown = set(block) - set(_DAMPING_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown damping keys {sorted(unknown)}; "
            f"known: {sorted(_DAMPING_FIELDS)}"
        )
    kwargs = {}
    for key, value in block.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(
                f"damping.{key} must be a number, got {value!r}"
            )
        kwargs[key] = float(value)
    return DampingConfig(**kwargs)  # __post_init__ validates the values


def damping_to_block(config: DampingConfig) -> Dict[str, Any]:
    return {name: getattr(config, name) for name in _DAMPING_FIELDS}


# ---------------------------------------------------------------------------
# Routing-policy blocks
# ---------------------------------------------------------------------------
POLICY_BLOCKS = Registry("routing policy")


def register_policy_block(name: str, entry: Any, **kw: Any) -> Any:
    return POLICY_BLOCKS.register(name, entry, **kw)


class _PolicyBlockEntry:
    """One policy kind: allowed keys, builder, optional serializer."""

    def __init__(self, keys, build, serialize=None, policy_types=(),
                 needs_topology=lambda block: False, validate=None):
        self.keys = frozenset(keys) | {"kind"}
        self.build = build
        self.serialize = serialize
        self.policy_types = tuple(policy_types)
        self.needs_topology = needs_topology
        self.validate = validate


def validate_policy_block(block: Dict[str, Any]) -> None:
    """Parse-time checks for a policy block, without a topology."""
    if not isinstance(block, dict) or "kind" not in block:
        raise ValueError(
            f"policy must be a dict with a 'kind' key or null, got {block!r}"
        )
    entry = POLICY_BLOCKS.get(block["kind"])
    unknown = set(block) - entry.keys
    if unknown:
        raise ValueError(
            f"unknown policy keys {sorted(unknown)} for kind "
            f"{block['kind']!r}; known: {sorted(entry.keys)}"
        )
    if entry.validate is not None:
        entry.validate(block)


def build_policy(
    block: Dict[str, Any], topology: Optional["Topology"] = None
) -> RoutingPolicy:
    """A :class:`RoutingPolicy` from its declarative block."""
    validate_policy_block(block)
    entry = POLICY_BLOCKS.get(block["kind"])
    if topology is None and entry.needs_topology(block):
        raise ValueError(
            f"policy kind {block['kind']!r} with inferred relationships "
            f"needs a topology to resolve; pass topology=... or inline "
            f"'relationships'"
        )
    return entry.build(block, topology)


def policy_to_block(policy: RoutingPolicy) -> Dict[str, Any]:
    """The declarative block for ``policy`` (inverse of build)."""
    from repro.specs.serialize import SpecSerializationError

    for name in POLICY_BLOCKS:
        entry = POLICY_BLOCKS.get(name)
        if entry.serialize is not None and type(policy) in entry.policy_types:
            return entry.serialize(policy)
    raise SpecSerializationError(
        f"no registered policy block serializes "
        f"{type(policy).__module__}.{type(policy).__qualname__}; "
        f"register_policy_block() it to make this spec declarative"
    )


def policy_needs_topology(block: Dict[str, Any]) -> bool:
    if not isinstance(block, dict) or "kind" not in block:
        return False
    entry = POLICY_BLOCKS.get(block["kind"])
    return entry.needs_topology(block)


register_policy_block(
    "shortest-path",
    _PolicyBlockEntry(
        keys=(),
        build=lambda block, topology: ShortestPathPolicy(),
        serialize=lambda policy: {"kind": "shortest-path"},
        policy_types=(ShortestPathPolicy,),
    ),
)

_INFER_MODES = ("hierarchical", "degree")


def _check_gao_rexford(block: Dict[str, Any]) -> None:
    if ("relationships" in block) == ("infer" in block):
        raise ValueError(
            "gao-rexford policy needs exactly one of 'relationships' "
            "(inline [[a, b, rel], ...] triples) or 'infer' "
            f"({'/'.join(_INFER_MODES)})"
        )
    if "infer" in block and block["infer"] not in _INFER_MODES:
        raise ValueError(
            f"unknown infer mode {block['infer']!r}; "
            f"choose from {sorted(_INFER_MODES)}"
        )


def _build_gao_rexford(
    block: Dict[str, Any], topology: Optional["Topology"]
) -> GaoRexfordPolicy:
    if "relationships" in block:
        rels = ASRelationships.from_items(
            tuple(item) for item in block["relationships"]
        )
        return GaoRexfordPolicy(rels)
    assert topology is not None  # guaranteed by build_policy
    if block["infer"] == "hierarchical":
        rels = infer_relationships_hierarchical(topology)
    else:
        ratio = block.get("peer_degree_ratio", 1.5)
        rels = infer_relationships(topology, peer_degree_ratio=float(ratio))
    return GaoRexfordPolicy(rels)


register_policy_block(
    "gao-rexford",
    _PolicyBlockEntry(
        keys=("relationships", "infer", "peer_degree_ratio"),
        build=_build_gao_rexford,
        validate=_check_gao_rexford,
        serialize=lambda policy: {
            "kind": "gao-rexford",
            "relationships": [
                list(item) for item in policy.relationships.items()
            ],
        },
        policy_types=(GaoRexfordPolicy,),
        needs_topology=lambda block: "infer" in block,
    ),
)
