"""The MRAI-scheme registry: named, declarative policy builders.

Every way the repo can pick MRAI values — the paper's constants, the
degree-dependent and dynamic schemes, the failure-extent-adaptive scheme
and the theory-derived ladder — is one :class:`MRAIScheme` entry here.
A scheme dict like ``{"mrai_scheme": "dynamic", "levels": [0.5, 1.25]}``
is validated field by field at parse time (a malformed ``levels`` fails
here, not deep inside a controller mid-simulation) and built into the
corresponding :class:`~repro.bgp.mrai.MRAIPolicy`.

Schemes whose parameters depend on the topology (``adaptive`` without an
explicit ``total_destinations``, ``theory`` always) declare it via
``needs_topology``; campaigns resolve them against the seed[0] topology
so the resulting specs stay deterministic and cacheable.

Register a new scheme with :func:`register_mrai_scheme`; nothing else in
the CLI, campaign or figure layers needs to change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from repro.bgp.mrai import ConstantMRAI, MRAIPolicy
from repro.core.adaptive import PAPER_CALIBRATION, AdaptiveExtentMRAI
from repro.core.degree_mrai import DegreeDependentMRAI
from repro.core.dynamic_mrai import (
    PAPER_DOWN_TH,
    PAPER_LEVELS,
    PAPER_UP_TH,
    DynamicMRAI,
)
from repro.specs.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.topology.graph import Topology

#: Monitors the dynamic scheme's controllers implement.
_MONITORS = ("queue", "utilization", "msgcount")


# ---------------------------------------------------------------------------
# Per-field parsing helpers (the typo-rejecting error layer)
# ---------------------------------------------------------------------------
def _number(scheme: Dict[str, Any], key: str, default: float) -> float:
    value = scheme.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{key} must be a number, got {value!r}")
    return float(value)


def _integer(scheme: Dict[str, Any], key: str, default: int) -> int:
    value = scheme.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{key} must be an integer, got {value!r}")
    return int(value)


def _levels(scheme: Dict[str, Any], key: str,
            default: Tuple[float, ...]) -> Tuple[float, ...]:
    raw = scheme.get(key, default)
    if isinstance(raw, (str, bytes)) or not hasattr(raw, "__iter__"):
        raise ValueError(
            f"{key} must be a non-empty ascending sequence of numbers, "
            f"got {raw!r}"
        )
    values = []
    for item in raw:
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            raise ValueError(
                f"{key} must contain only numbers, got {item!r}"
            )
        values.append(float(item))
    if not values or values != sorted(values):
        raise ValueError(
            f"{key} must be a non-empty ascending sequence "
            f"(got {list(raw)!r})"
        )
    return tuple(values)


def _calibration(
    scheme: Dict[str, Any], key: str,
    default: Tuple[Tuple[float, float], ...],
) -> Tuple[Tuple[float, float], ...]:
    raw = scheme.get(key, default)
    try:
        table = tuple(
            (float(fraction), float(mrai)) for fraction, mrai in raw
        )
    except (TypeError, ValueError):
        raise ValueError(
            f"{key} must be a sequence of [fraction, mrai] pairs, "
            f"got {raw!r}"
        ) from None
    fractions = [fraction for fraction, __ in table]
    if not table or fractions != sorted(fractions) or fractions[0] != 0.0:
        raise ValueError(
            f"{key} must be ascending in fraction and start at 0.0 "
            f"(got {raw!r})"
        )
    return table


def _thresholds(scheme: Dict[str, Any]) -> Tuple[float, float]:
    up_th = _number(scheme, "up_th", PAPER_UP_TH)
    down_th = _number(scheme, "down_th", PAPER_DOWN_TH)
    if down_th > up_th:
        raise ValueError("down_th must not exceed up_th")
    return up_th, down_th


# ---------------------------------------------------------------------------
# Scheme entries
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MRAIScheme:
    """One registered MRAI scheme: its parameters, builder and inverse.

    ``parse`` validates/defaults the scheme-dict parameters (raising
    per-field :class:`ValueError`); ``build`` turns the parsed dict (and
    optionally the topology) into a policy; ``serialize`` is the inverse
    used by :func:`repro.specs.serialize.spec_to_dict`, registered for
    the policy classes in ``policy_types``.  Schemes that can only be
    resolved against a topology return True from ``needs_topology``.
    """

    name: str
    params: Tuple[str, ...]
    parse: Callable[[Dict[str, Any]], Dict[str, Any]]
    build: Callable[[Dict[str, Any], Optional["Topology"]], MRAIPolicy]
    serialize: Optional[Callable[[MRAIPolicy], Dict[str, Any]]] = None
    policy_types: Tuple[type, ...] = ()
    needs_topology: Callable[[Dict[str, Any]], bool] = field(
        default=lambda parsed: False
    )


MRAI_SCHEMES = Registry("mrai_scheme")


def register_mrai_scheme(
    entry: MRAIScheme, *, replace: bool = False
) -> MRAIScheme:
    """Make a new MRAI scheme usable in every scheme dict repo-wide."""
    return MRAI_SCHEMES.register(entry.name, entry, replace=replace)


def mrai_scheme_params() -> frozenset:
    """Every parameter name any registered scheme accepts."""
    names = set()
    for name in MRAI_SCHEMES:
        names.update(MRAI_SCHEMES.get(name).params)
    return frozenset(names)


def build_mrai(
    scheme: Dict[str, Any], topology: Optional["Topology"] = None
) -> MRAIPolicy:
    """Build the MRAI policy a scheme dict describes.

    Only reads the ``mrai_scheme`` key and that scheme's own parameters;
    key-set validation against the *whole* scheme vocabulary lives in
    :func:`repro.specs.serialize.build_spec`.
    """
    kind = scheme.get("mrai_scheme", "constant")
    entry = MRAI_SCHEMES.get(kind)
    parsed = entry.parse(scheme)
    if topology is None and entry.needs_topology(parsed):
        raise ValueError(
            f"mrai_scheme {kind!r} needs a topology to resolve; pass "
            f"topology=... (campaigns resolve against the first seed's "
            f"topology)"
        )
    return entry.build(parsed, topology)


def mrai_to_scheme(policy: MRAIPolicy) -> Dict[str, Any]:
    """The declarative scheme dict for ``policy`` (inverse of build).

    Raises :class:`SpecSerializationError` for policy classes no
    registered scheme claims — register the scheme (with a ``serialize``
    and ``policy_types``) to make such specs storable.
    """
    from repro.specs.serialize import SpecSerializationError

    for name in MRAI_SCHEMES:
        entry = MRAI_SCHEMES.get(name)
        if entry.serialize is not None and type(policy) in entry.policy_types:
            return entry.serialize(policy)
    raise SpecSerializationError(
        f"no registered mrai_scheme serializes "
        f"{type(policy).__module__}.{type(policy).__qualname__}; "
        f"register_mrai_scheme() it to make this spec declarative"
    )


def scheme_needs_topology(scheme: Dict[str, Any]) -> bool:
    """Whether building this scheme dict requires a topology."""
    kind = scheme.get("mrai_scheme", "constant")
    entry = MRAI_SCHEMES.get(kind)
    return entry.needs_topology(entry.parse(scheme))


# ---------------------------------------------------------------------------
# The five built-in schemes
# ---------------------------------------------------------------------------
def _parse_constant(scheme: Dict[str, Any]) -> Dict[str, Any]:
    mrai = _number(scheme, "mrai", 0.5)
    if mrai < 0:
        raise ValueError("mrai must be non-negative")
    return {"mrai": mrai}


register_mrai_scheme(
    MRAIScheme(
        name="constant",
        params=("mrai",),
        parse=_parse_constant,
        build=lambda parsed, topology: ConstantMRAI(parsed["mrai"]),
        serialize=lambda policy: {
            "mrai_scheme": "constant",
            "mrai": policy.value,
        },
        policy_types=(ConstantMRAI,),
    )
)


def _parse_degree(scheme: Dict[str, Any]) -> Dict[str, Any]:
    low = _number(scheme, "mrai_low", 0.5)
    high = _number(scheme, "mrai_high", 2.25)
    if low < 0 or high < 0:
        raise ValueError("mrai_low/mrai_high must be non-negative")
    threshold = _integer(scheme, "degree_threshold", 4)
    if threshold < 1:
        raise ValueError("degree_threshold must be >= 1")
    return {"mrai_low": low, "mrai_high": high, "degree_threshold": threshold}


register_mrai_scheme(
    MRAIScheme(
        name="degree",
        params=("mrai_low", "mrai_high", "degree_threshold"),
        parse=_parse_degree,
        build=lambda parsed, topology: DegreeDependentMRAI(
            parsed["mrai_low"],
            parsed["mrai_high"],
            degree_threshold=parsed["degree_threshold"],
        ),
        serialize=lambda policy: {
            "mrai_scheme": "degree",
            "mrai_low": policy.low_value,
            "mrai_high": policy.high_value,
            "degree_threshold": policy.degree_threshold,
        },
        policy_types=(DegreeDependentMRAI,),
    )
)


def _parse_dynamic(scheme: Dict[str, Any]) -> Dict[str, Any]:
    levels = _levels(scheme, "levels", PAPER_LEVELS)
    up_th, down_th = _thresholds(scheme)
    monitor = scheme.get("monitor", "queue")
    if monitor not in _MONITORS:
        raise ValueError(
            f"unknown monitor {monitor!r}; choose from {sorted(_MONITORS)}"
        )
    mean_service = _number(scheme, "mean_service", 0.0155)
    if monitor == "queue" and mean_service <= 0:
        raise ValueError("mean_service must be positive")
    threshold = scheme.get("high_degree_only_threshold")
    if threshold is not None:
        if isinstance(threshold, bool) or not isinstance(threshold, int):
            raise ValueError(
                f"high_degree_only_threshold must be an integer or null, "
                f"got {threshold!r}"
            )
        if threshold < 1:
            raise ValueError("high_degree_only_threshold must be >= 1")
    return {
        "levels": levels,
        "up_th": up_th,
        "down_th": down_th,
        "monitor": monitor,
        "mean_service": mean_service,
        "high_degree_only_threshold": threshold,
    }


register_mrai_scheme(
    MRAIScheme(
        name="dynamic",
        params=(
            "levels",
            "up_th",
            "down_th",
            "monitor",
            "mean_service",
            "high_degree_only_threshold",
        ),
        parse=_parse_dynamic,
        build=lambda parsed, topology: DynamicMRAI(**parsed),
        serialize=lambda policy: {
            "mrai_scheme": "dynamic",
            "levels": list(policy.levels),
            "up_th": policy.up_th,
            "down_th": policy.down_th,
            "monitor": policy.monitor,
            "mean_service": policy.mean_service,
            "high_degree_only_threshold": policy.high_degree_only_threshold,
        },
        policy_types=(DynamicMRAI,),
    )
)


def _parse_adaptive(scheme: Dict[str, Any]) -> Dict[str, Any]:
    calibration = _calibration(scheme, "calibration", PAPER_CALIBRATION)
    window = _number(scheme, "window", 5.0)
    if window <= 0:
        raise ValueError("window must be positive")
    total = scheme.get("total_destinations")
    if total is not None:
        if isinstance(total, bool) or not isinstance(total, int):
            raise ValueError(
                f"total_destinations must be an integer, got {total!r}"
            )
        if total < 1:
            raise ValueError("total_destinations must be positive")
    return {
        "calibration": calibration,
        "window": window,
        "total_destinations": total,
    }


def _build_adaptive(
    parsed: Dict[str, Any], topology: Optional["Topology"]
) -> MRAIPolicy:
    total = parsed["total_destinations"]
    if total is None:
        assert topology is not None  # guaranteed by build_mrai
        total = len(topology.as_numbers())
    return AdaptiveExtentMRAI(
        total_destinations=total,
        calibration=parsed["calibration"],
        window=parsed["window"],
    )


register_mrai_scheme(
    MRAIScheme(
        name="adaptive",
        params=("calibration", "window", "total_destinations"),
        parse=_parse_adaptive,
        build=_build_adaptive,
        serialize=lambda policy: {
            "mrai_scheme": "adaptive",
            "calibration": [list(pair) for pair in policy.calibration],
            "window": policy.window,
            "total_destinations": policy.total_destinations,
        },
        policy_types=(AdaptiveExtentMRAI,),
        needs_topology=lambda parsed: parsed["total_destinations"] is None,
    )
)


def _parse_theory(scheme: Dict[str, Any]) -> Dict[str, Any]:
    fractions = _levels(scheme, "fractions", (0.02, 0.05, 0.20))
    mean_service = _number(scheme, "mean_service", 0.0155)
    if mean_service <= 0:
        raise ValueError("mean_service must be positive")
    floor = _number(scheme, "floor", 0.25)
    if floor <= 0:
        raise ValueError("floor must be positive")
    up_th, down_th = _thresholds(scheme)
    return {
        "fractions": fractions,
        "mean_service": mean_service,
        "floor": floor,
        "up_th": up_th,
        "down_th": down_th,
    }


def _build_theory(
    parsed: Dict[str, Any], topology: Optional["Topology"]
) -> MRAIPolicy:
    from repro.core.theory import recommend_ladder

    assert topology is not None  # guaranteed by build_mrai
    return DynamicMRAI(
        levels=recommend_ladder(
            topology,
            fractions=parsed["fractions"],
            mean_service=parsed["mean_service"],
            floor=parsed["floor"],
        ),
        up_th=parsed["up_th"],
        down_th=parsed["down_th"],
    )


# The theory scheme resolves to a DynamicMRAI over the recommended
# ladder, so it serializes as "dynamic" (with the levels made explicit);
# it registers no policy_types of its own.
register_mrai_scheme(
    MRAIScheme(
        name="theory",
        params=("fractions", "mean_service", "floor", "up_th", "down_th"),
        parse=_parse_theory,
        build=_build_theory,
        needs_topology=lambda parsed: True,
    )
)
