"""Topology blocks: named distributions and topology-kind builders.

The canonical home of the degree-distribution table the CLI's
``--distribution`` flag and campaign topology blocks share (it used to
live in ``repro.store.campaign``, which forced the CLI to import from
the store layer), plus the registry resolving a declarative topology
block — ``{"kind": "skewed", "nodes": 60, "distribution": "70-30"}`` —
into a per-seed factory.

Register a new kind with :func:`register_topology_kind`; campaign files
and the figure harness can then name it with no further code changes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.specs.registry import Registry
from repro.topology.degree import SkewedDegreeSpec
from repro.topology.graph import Topology
from repro.topology.internet import internet_like_topology
from repro.topology.multirouter import MultiRouterSpec, multi_router_topology
from repro.topology.skewed import skewed_topology

#: Named degree distributions usable in topology blocks and CLI flags.
DISTRIBUTIONS: Dict[str, Callable[[], SkewedDegreeSpec]] = {
    "70-30": SkewedDegreeSpec.paper_70_30,
    "50-50": SkewedDegreeSpec.paper_50_50,
    "85-15": SkewedDegreeSpec.paper_85_15,
    "50-50-dense": SkewedDegreeSpec.paper_50_50_dense,
}

TOPOLOGY_KINDS = Registry("topology kind")

#: A registered kind: block dict -> (seed -> Topology) factory.
TopologyKindBuilder = Callable[[Dict[str, Any]], Callable[[int], Topology]]


def register_topology_kind(
    name: str, builder: TopologyKindBuilder, *, replace: bool = False
) -> TopologyKindBuilder:
    return TOPOLOGY_KINDS.register(name, builder, replace=replace)


def distribution_spec(name: str) -> SkewedDegreeSpec:
    """Resolve a named degree distribution (typo-rejecting)."""
    if name not in DISTRIBUTIONS:
        raise ValueError(
            f"unknown distribution {name!r}; "
            f"choose from {sorted(DISTRIBUTIONS)}"
        )
    return DISTRIBUTIONS[name]()


def topology_factory(block: Dict[str, Any]) -> Callable[[int], Topology]:
    """Per-seed topology builder from a declarative parameter block."""
    kind = block.get("kind", "skewed")
    return TOPOLOGY_KINDS.get(kind)(block)


def _skewed_builder(block: Dict[str, Any]) -> Callable[[int], Topology]:
    nodes = int(block.get("nodes", 60))
    dist = distribution_spec(block.get("distribution", "70-30"))
    return lambda seed: skewed_topology(nodes, dist, seed=seed)


def _internet_builder(block: Dict[str, Any]) -> Callable[[int], Topology]:
    nodes = int(block.get("nodes", 60))
    return lambda seed: internet_like_topology(nodes, seed=seed)


def _multirouter_builder(block: Dict[str, Any]) -> Callable[[int], Topology]:
    spec = MultiRouterSpec(num_ases=int(block.get("nodes", 60)))
    return lambda seed: multi_router_topology(spec, seed=seed)


register_topology_kind("skewed", _skewed_builder)
register_topology_kind("internet", _internet_builder)
register_topology_kind("multirouter", _multirouter_builder)
