"""Declarative experiment descriptions: registries + round-trip dicts.

This package is the single source of truth for what an experiment *is*
as data.  The CLI, campaign files, the figure harness and the
content-addressed store all build :class:`~repro.core.experiment.
ExperimentSpec` objects through :func:`build_spec` and serialize them
back through :func:`spec_to_dict`, so

* a campaign JSON can express every scheme the ``run`` subcommand can,
* new MRAI schemes / policy kinds / topology kinds are registered once
  (:func:`register_mrai_scheme`, :func:`register_policy_block`,
  :func:`register_topology_kind`) and become usable everywhere, and
* two construction paths meaning the same experiment share one cache
  fingerprint.

See ``docs/SPECS.md`` for the dict schema and registration walkthrough.
"""

from repro.specs.blocks import (
    POLICY_BLOCKS,
    QUEUE_DISCIPLINES,
    build_damping,
    build_policy,
    check_queue_discipline,
    damping_to_block,
    policy_needs_topology,
    policy_to_block,
    register_policy_block,
    validate_policy_block,
)
from repro.specs.mrai import (
    MRAI_SCHEMES,
    MRAIScheme,
    build_mrai,
    mrai_scheme_params,
    mrai_to_scheme,
    register_mrai_scheme,
)
from repro.specs.registry import Registry
from repro.specs.scheme_sets import (
    SCHEME_SETS,
    register_scheme_set,
    scheme_set,
    scheme_set_specs,
)
from repro.specs.serialize import (
    SpecSerializationError,
    build_spec,
    scheme_keys,
    scheme_requires_topology,
    spec_from_dict,
    spec_to_dict,
    validate_scheme,
)
from repro.specs.topology import (
    DISTRIBUTIONS,
    TOPOLOGY_KINDS,
    distribution_spec,
    register_topology_kind,
    topology_factory,
)

__all__ = [
    "Registry",
    # MRAI schemes
    "MRAI_SCHEMES",
    "MRAIScheme",
    "register_mrai_scheme",
    "mrai_scheme_params",
    "build_mrai",
    "mrai_to_scheme",
    # queue / damping / policy blocks
    "QUEUE_DISCIPLINES",
    "check_queue_discipline",
    "build_damping",
    "damping_to_block",
    "POLICY_BLOCKS",
    "register_policy_block",
    "validate_policy_block",
    "build_policy",
    "policy_to_block",
    "policy_needs_topology",
    # topology blocks
    "DISTRIBUTIONS",
    "TOPOLOGY_KINDS",
    "register_topology_kind",
    "topology_factory",
    "distribution_spec",
    # spec round-trip
    "build_spec",
    "spec_from_dict",
    "spec_to_dict",
    "validate_scheme",
    "scheme_keys",
    "scheme_requires_topology",
    "SpecSerializationError",
    # figure scheme sets
    "SCHEME_SETS",
    "register_scheme_set",
    "scheme_set",
    "scheme_set_specs",
]
