"""A tiny named-builder registry shared by every spec kind.

Each declarative concept (MRAI scheme, queue discipline, routing-policy
block, topology kind, degree distribution, figure scheme set) keeps its
entries in one :class:`Registry`.  Registering a new entry is the *only*
step needed to make a new scheme usable from the CLI, campaign files and
the figure harness — the consumers all resolve names through here.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List


class Registry:
    """Name -> entry mapping with uniform unknown-name errors.

    ``kind`` is the phrase used in error messages (``"mrai_scheme"``,
    ``"topology kind"``, ...), chosen so existing pinned messages like
    ``unknown mrai_scheme 'quantum'`` keep their exact prefix.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, Any] = {}

    def register(
        self, name: str, entry: Any, *, replace: bool = False
    ) -> Any:
        """Add ``entry`` under ``name``; re-registration must be explicit."""
        if not replace and name in self._entries:
            raise ValueError(
                f"{self.kind} {name!r} is already registered "
                f"(pass replace=True to override)"
            )
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> None:
        """Remove an entry (mainly for tests registering throwaways)."""
        if name not in self._entries:
            raise ValueError(f"{self.kind} {name!r} is not registered")
        del self._entries[name]

    def get(self, name: str) -> Any:
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; "
                f"choose from {self.names()}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)
