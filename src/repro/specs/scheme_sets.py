"""Named figure/ablation scheme sets, declared as registry data.

Every comparison the figure harness draws — "three constant MRAIs",
"batching vs dynamic vs constants", each ablation's scheme list — is a
registered function from a scale profile to ``(label, scheme-dict)``
pairs.  Figure modules fetch built specs with :func:`scheme_set_specs`
instead of constructing :class:`ExperimentSpec` lists inline, so adding
a scheme to a comparison (or a whole new comparison) is a data change
here, not an edit across fig modules.

Profiles are duck-typed: anything with the attributes a set reads
(``mrai_three``, ``dynamic_levels``, ...) works, keeping this module
independent of :mod:`repro.figures`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.specs.registry import Registry
from repro.specs.serialize import build_spec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.experiment import ExperimentSpec
    from repro.topology.graph import Topology

#: One scheme set: profile -> ((label, scheme dict), ...).
SchemeSetFn = Callable[[Any], Tuple[Tuple[str, Dict[str, Any]], ...]]

SCHEME_SETS = Registry("scheme set")

#: The per-failure-size optima the paper reports for the Fig 13
#: multi-router topologies (the dynamic ladder tops out at 3.5 s there).
REALISTIC_LEVELS = (0.5, 1.25, 3.5)


def register_scheme_set(
    name: str, fn: SchemeSetFn, *, replace: bool = False
) -> SchemeSetFn:
    return SCHEME_SETS.register(name, fn, replace=replace)


def scheme_set(
    name: str, profile: Any
) -> Tuple[Tuple[str, Dict[str, Any]], ...]:
    """The declarative ``(label, scheme dict)`` pairs of a named set."""
    return SCHEME_SETS.get(name)(profile)


def scheme_set_specs(
    name: str, profile: Any, topology: Optional["Topology"] = None
) -> List[Tuple[str, "ExperimentSpec"]]:
    """The built ``(label, ExperimentSpec)`` pairs of a named set.

    ``topology`` is required only for sets containing topology-resolved
    schemes (adaptive/theory MRAI, inferred policy relationships).
    """
    return [
        (label, build_spec(scheme, topology=topology))
        for label, scheme in scheme_set(name, profile)
    ]


def _constant(mrai: float, **extra: Any) -> Dict[str, Any]:
    return {"mrai_scheme": "constant", "mrai": mrai, **extra}


def _dynamic(levels, **extra: Any) -> Dict[str, Any]:
    return {"mrai_scheme": "dynamic", "levels": list(levels), **extra}


# ---------------------------------------------------------------------------
# Figure scheme sets
# ---------------------------------------------------------------------------
def _mrai_three(profile):
    """Figs 1/2: the three headline constant MRAIs."""
    return tuple(
        (f"MRAI={value:g}s", _constant(value))
        for value in profile.mrai_three
    )


def _batching(profile):
    """Figs 10/11: constants vs dynamic vs batching vs both."""
    low, __, high = profile.mrai_three
    return (
        (f"MRAI={low:g}s", _constant(low)),
        (f"MRAI={high:g}s", _constant(high)),
        ("dynamic", _dynamic(profile.dynamic_levels)),
        ("batching", _constant(low, queue="dest_batch")),
        (
            "batch+dynamic",
            _dynamic(profile.dynamic_levels, queue="dest_batch"),
        ),
    )


def _degree_mrai(profile):
    """Fig 6: degree-dependent MRAI vs constants, plus the reversal."""
    low, __, high = profile.mrai_three
    return (
        (f"MRAI={low:g}s", _constant(low)),
        (f"MRAI={high:g}s", _constant(high)),
        (
            f"low {low:g}, high {high:g}",
            {"mrai_scheme": "degree", "mrai_low": low, "mrai_high": high},
        ),
        (
            f"low {high:g}, high {low:g}",
            {"mrai_scheme": "degree", "mrai_low": high, "mrai_high": low},
        ),
    )


def _dynamic_vs_constant(profile):
    """Fig 7: the dynamic scheme against the three constants."""
    return tuple(
        (f"MRAI={value:g}s", _constant(value))
        for value in profile.mrai_three
    ) + (("dynamic", _dynamic(profile.dynamic_levels)),)


def _dynamic_up_th(profile):
    """Fig 8: upTh sensitivity (downTh pinned to 0)."""
    return tuple(
        (
            f"upTh={up:g}s",
            _dynamic(profile.dynamic_levels, up_th=up, down_th=0.0),
        )
        for up in (0.05, 0.65, 1.25)
    )


def _dynamic_down_th(profile):
    """Fig 9: downTh sensitivity (upTh pinned to the paper's 0.65)."""
    return tuple(
        (
            f"downTh={down:g}s",
            _dynamic(profile.dynamic_levels, up_th=0.65, down_th=down),
        )
        for down in (0.0, 0.05, 0.30)
    )


def _realistic(profile):
    """Fig 13: the scheme set on multi-router topologies."""
    return (
        ("MRAI=0.5s", _constant(0.5)),
        ("MRAI=3.5s", _constant(3.5)),
        ("dynamic", _dynamic(REALISTIC_LEVELS)),
        ("batching", _constant(0.5, queue="dest_batch")),
        ("batch+dynamic", _dynamic(REALISTIC_LEVELS, queue="dest_batch")),
    )


register_scheme_set("mrai_three", _mrai_three)
register_scheme_set("batching", _batching)
register_scheme_set("degree_mrai", _degree_mrai)
register_scheme_set("dynamic_vs_constant", _dynamic_vs_constant)
register_scheme_set("dynamic_up_th", _dynamic_up_th)
register_scheme_set("dynamic_down_th", _dynamic_down_th)
register_scheme_set("realistic", _realistic)


# ---------------------------------------------------------------------------
# Ablation scheme sets
# ---------------------------------------------------------------------------
def _ab_per_dest_mrai(profile):
    low = profile.mrai_three[0]
    return (
        ("per-peer", _constant(low)),
        ("per-destination", _constant(low, per_destination_mrai=True)),
    )


def _ab_tcp_batch(profile):
    low = profile.mrai_three[0]
    return (
        ("FIFO", _constant(low)),
        ("tcp-batch", _constant(low, queue="tcp_batch")),
        ("dest-batch", _constant(low, queue="dest_batch")),
    )


def _ab_monitors(profile):
    levels = profile.dynamic_levels
    return (
        ("queue", _dynamic(levels)),
        (
            "utilization",
            _dynamic(levels, monitor="utilization", up_th=0.85, down_th=0.30),
        ),
        (
            "msgcount",
            _dynamic(levels, monitor="msgcount", up_th=40.0, down_th=5.0),
        ),
        ("static low", _constant(levels[0])),
    )


def _ab_high_degree_only(profile):
    levels = profile.dynamic_levels
    return (
        ("dynamic everywhere", _dynamic(levels)),
        (
            "dynamic at high degree only",
            _dynamic(levels, high_degree_only_threshold=4),
        ),
    )


def _ab_failure_geometry(profile):
    low = profile.mrai_three[0]
    return (
        ("geographic", _constant(low)),
        ("scattered", _constant(low, failure_kind="random")),
    )


def _ab_withdrawal_rl(profile):
    low = profile.mrai_three[0]
    return (
        ("immediate withdrawals", _constant(low)),
        ("rate-limited withdrawals",
         _constant(low, withdrawal_rate_limiting=True)),
    )


def _ab_processing(profile):
    low = profile.mrai_three[0]
    return (
        ("uniform(1,30)ms FIFO", _constant(low)),
        ("uniform(1,30)ms batching", _constant(low, queue="dest_batch")),
        (
            "zero cost FIFO",
            _constant(low, processing_delay_range=[0.0, 0.0]),
        ),
        (
            "zero cost batching",
            _constant(
                low, processing_delay_range=[0.0, 0.0], queue="dest_batch"
            ),
        ),
    )


def _ab_future_work(profile):
    """Sec-5 future-work schemes; adaptive/theory resolve per topology."""
    low = profile.mrai_three[0]
    return (
        (f"MRAI={low:g}s", _constant(low)),
        ("dynamic (paper)", _dynamic(profile.dynamic_levels)),
        ("batching (paper)", _constant(low, queue="dest_batch")),
        ("adaptive extent", {"mrai_scheme": "adaptive"}),
        ("withdrawal-first batch", _constant(low, queue="dest_batch_wf")),
        ("dynamic @ theory ladder", {"mrai_scheme": "theory"}),
    )


def _ab_detection_delay(profile):
    low = profile.mrai_three[0]
    return tuple(
        (
            f"hold={detection:g}s",
            _constant(
                low,
                detection_delay=detection,
                detection_jitter=detection * 0.25,
            ),
        )
        for detection in (0.0, 1.0, 3.0)
    )


def _ab_flap_damping(profile):
    low = profile.mrai_three[0]
    return (
        ("no damping", _constant(low)),
        ("flap damping", _constant(low, damping={"half_life": 4.0})),
        ("batching", _constant(low, queue="dest_batch")),
    )


def _ab_policy_routing(profile):
    low = profile.mrai_three[0]
    return (
        ("no policy (paper)", _constant(low)),
        (
            "Gao-Rexford",
            _constant(
                low, policy={"kind": "gao-rexford", "infer": "hierarchical"}
            ),
        ),
    )


register_scheme_set("ab_per_dest_mrai", _ab_per_dest_mrai)
register_scheme_set("ab_tcp_batch", _ab_tcp_batch)
register_scheme_set("ab_monitors", _ab_monitors)
register_scheme_set("ab_high_degree_only", _ab_high_degree_only)
register_scheme_set("ab_failure_geometry", _ab_failure_geometry)
register_scheme_set("ab_withdrawal_rl", _ab_withdrawal_rl)
register_scheme_set("ab_processing", _ab_processing)
register_scheme_set("ab_future_work", _ab_future_work)
register_scheme_set("ab_detection_delay", _ab_detection_delay)
register_scheme_set("ab_flap_damping", _ab_flap_damping)
register_scheme_set("ab_policy_routing", _ab_policy_routing)
