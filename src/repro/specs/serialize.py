"""Round-trip serialization between scheme dicts and ExperimentSpec.

The *scheme dict* is the repo's one declarative experiment description:
the flat JSON object campaign files put under ``"schemes"``, the CLI
builds from its flags, and the figure harness declares its scheme sets
in.  :func:`build_spec` turns a (possibly sparse) scheme dict into an
:class:`~repro.core.experiment.ExperimentSpec`; :func:`spec_to_dict`
emits the fully explicit dict for a spec, such that

    spec_from_dict(spec.to_dict()) == spec

holds for every spec whose policies are registry-serializable.  The
explicit dict is also the canonical form the content-addressed store
fingerprints (:mod:`repro.store.hashing`), so the manifest records the
full declarative spec and two construction paths that mean the same
experiment share cache entries.

Validation is typo-rejecting at every level: unknown scheme keys,
parameters that do not belong to the selected ``mrai_scheme``, malformed
``levels``/``calibration`` tables, unknown queue disciplines and bad
damping/policy blocks all fail at parse time with per-field messages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.bgp.mrai import ConstantMRAI
from repro.core.experiment import ExperimentSpec
from repro.specs.blocks import (
    build_damping,
    build_policy,
    check_queue_discipline,
    damping_to_block,
    policy_needs_topology,
    policy_to_block,
    validate_policy_block,
)
from repro.specs.mrai import (
    MRAI_SCHEMES,
    build_mrai,
    mrai_scheme_params,
    mrai_to_scheme,
    scheme_needs_topology as _mrai_needs_topology,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.topology.graph import Topology


class SpecSerializationError(ValueError):
    """A spec cannot be expressed as a declarative dict.

    Raised by :func:`spec_to_dict` when a policy object's class has no
    registered serializer; the store then falls back to the structural
    object encoding so such specs remain cacheable (under a key private
    to that class) even though they cannot go in a campaign file.
    """


def _bool(value: Any, key: str) -> bool:
    if not isinstance(value, bool):
        raise ValueError(f"{key} must be true or false, got {value!r}")
    return value


def _float(value: Any, key: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{key} must be a number, got {value!r}")
    return float(value)


def _int(value: Any, key: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{key} must be an integer, got {value!r}")
    return int(value)


def _pair(value: Any, key: str) -> Tuple[float, float]:
    try:
        lo, hi = value
        return (float(lo), float(hi))
    except (TypeError, ValueError):
        raise ValueError(
            f"{key} must be a [min, max] pair of numbers, got {value!r}"
        ) from None


#: Spec-level scheme keys: scheme-dict key -> (ExperimentSpec field,
#: decoder).  MRAI parameters are contributed by the scheme registry.
_SPEC_FIELDS = {
    "queue": (
        "queue_discipline",
        lambda v: check_queue_discipline(str(v)),
    ),
    "tcp_batch_size": ("tcp_batch_size", lambda v: _int(v, "tcp_batch_size")),
    "failure_fraction": (
        "failure_fraction",
        lambda v: _float(v, "failure_fraction"),
    ),
    "failure_kind": ("failure_kind", str),
    "failure_center": (
        "failure_center",
        lambda v: None if v is None else _pair(v, "failure_center"),
    ),
    "processing_delay_range": (
        "processing_delay_range",
        lambda v: _pair(v, "processing_delay_range"),
    ),
    "withdrawal_rate_limiting": (
        "withdrawal_rate_limiting",
        lambda v: _bool(v, "withdrawal_rate_limiting"),
    ),
    "sender_side_loop_detection": (
        "sender_side_loop_detection",
        lambda v: _bool(v, "sender_side_loop_detection"),
    ),
    "per_destination_mrai": (
        "per_destination_mrai",
        lambda v: _bool(v, "per_destination_mrai"),
    ),
    "detection_delay": (
        "detection_delay",
        lambda v: _float(v, "detection_delay"),
    ),
    "detection_jitter": (
        "detection_jitter",
        lambda v: _float(v, "detection_jitter"),
    ),
    "max_convergence_time": (
        "max_convergence_time",
        lambda v: _float(v, "max_convergence_time"),
    ),
    "max_warmup_time": (
        "max_warmup_time",
        lambda v: _float(v, "max_warmup_time"),
    ),
    "validate": ("validate", lambda v: _bool(v, "validate")),
}


def scheme_keys() -> frozenset:
    """Every key a scheme dict may contain (registry-derived)."""
    return (
        frozenset({"mrai_scheme", "damping", "policy"})
        | mrai_scheme_params()
        | frozenset(_SPEC_FIELDS)
    )


def scheme_requires_topology(scheme: Dict[str, Any]) -> bool:
    """Whether :func:`build_spec` needs a topology for this scheme."""
    if _mrai_needs_topology(scheme):
        return True
    return policy_needs_topology(scheme.get("policy"))


def validate_scheme(scheme: Dict[str, Any]) -> None:
    """Parse-time validation of a scheme dict, without a topology.

    Runs every check :func:`build_spec` would — unknown keys, per-field
    parameter messages, spec-level constraints — but skips resolving the
    topology-dependent pieces (adaptive/theory policies, inferred
    relationships), so campaign files validate instantly.
    """
    _build(scheme, topology=None, resolve=False)


def build_spec(
    scheme: Dict[str, Any], topology: Optional["Topology"] = None
) -> ExperimentSpec:
    """An :class:`ExperimentSpec` from a declarative scheme dictionary.

    ``mrai_scheme`` selects a registered MRAI scheme (default
    ``constant``) whose parameters ride alongside; the remaining keys
    set spec-level fields (``queue``, ``failure_fraction``, ``damping``,
    ``policy``, ...).  Unknown keys — and parameters that belong to a
    *different* mrai_scheme — are errors: typos must not silently
    produce a differently-hashed spec.  Schemes that resolve against the
    network (``adaptive``/``theory`` MRAI, inferred Gao-Rexford
    relationships) need ``topology``.
    """
    return _build(scheme, topology=topology, resolve=True)


#: Alias making the round-trip contract explicit at call sites.
spec_from_dict = build_spec


def _build(
    scheme: Dict[str, Any],
    topology: Optional["Topology"],
    resolve: bool,
) -> ExperimentSpec:
    known = scheme_keys()
    unknown = set(scheme) - known
    if unknown:
        raise ValueError(
            f"unknown scheme keys {sorted(unknown)}; "
            f"known: {sorted(known)}"
        )
    kind = scheme.get("mrai_scheme", "constant")
    entry = MRAI_SCHEMES.get(kind)  # raises "unknown mrai_scheme ..."
    foreign = (set(scheme) & mrai_scheme_params()) - set(entry.params)
    if foreign:
        raise ValueError(
            f"scheme keys {sorted(foreign)} are not parameters of "
            f"mrai_scheme {kind!r} (its parameters: {sorted(entry.params)})"
        )
    if resolve or not _mrai_needs_topology(scheme):
        mrai = build_mrai(scheme, topology)
    else:
        # Validation-only path: the parameters were parsed (and hence
        # checked) by _mrai_needs_topology; stand in a constant policy
        # so the spec-level checks below still run.
        mrai = ConstantMRAI(0.5)

    spec_kwargs: Dict[str, Any] = {"mrai": mrai}
    for key, (field_name, decode) in _SPEC_FIELDS.items():
        if key in scheme:
            spec_kwargs[field_name] = decode(scheme[key])
    if scheme.get("damping") is not None:
        spec_kwargs["damping"] = build_damping(scheme["damping"])
    if scheme.get("policy") is not None:
        block = scheme["policy"]
        validate_policy_block(block)
        if resolve or not policy_needs_topology(block):
            spec_kwargs["policy"] = build_policy(block, topology)
    # ExperimentSpec.__post_init__ validates the cross-field constraints
    # (failure_fraction range, failure_kind, detection delays).
    return ExperimentSpec(**spec_kwargs)


def spec_to_dict(spec: ExperimentSpec) -> Dict[str, Any]:
    """The fully explicit declarative dict for ``spec``.

    Every field is present (defaults included), so the dict doubles as
    the canonical fingerprint form for the content-addressed store —
    and ``spec_from_dict`` of the result reproduces an equal spec.
    Raises :class:`SpecSerializationError` when the spec's MRAI or
    routing policy is not registry-serializable.
    """
    out: Dict[str, Any] = dict(mrai_to_scheme(spec.mrai))
    out["queue"] = spec.queue_discipline
    out["tcp_batch_size"] = spec.tcp_batch_size
    out["failure_fraction"] = spec.failure_fraction
    out["failure_kind"] = spec.failure_kind
    out["failure_center"] = (
        None if spec.failure_center is None else list(spec.failure_center)
    )
    out["processing_delay_range"] = list(spec.processing_delay_range)
    out["withdrawal_rate_limiting"] = spec.withdrawal_rate_limiting
    out["sender_side_loop_detection"] = spec.sender_side_loop_detection
    out["per_destination_mrai"] = spec.per_destination_mrai
    out["damping"] = (
        None if spec.damping is None else damping_to_block(spec.damping)
    )
    out["policy"] = (
        None if spec.policy is None else policy_to_block(spec.policy)
    )
    out["detection_delay"] = spec.detection_delay
    out["detection_jitter"] = spec.detection_jitter
    out["max_convergence_time"] = spec.max_convergence_time
    out["max_warmup_time"] = spec.max_warmup_time
    out["validate"] = spec.validate
    return out
