"""repro — reproduction of "Improving BGP Convergence Delay for Large-Scale
Failures" (Sahoo, Kant, Mohapatra; DSN 2006).

An event-driven BGP-4 simulator (the SSFNet substitute), BRITE-style topology
generation, geographic failure injection, and the paper's two contributions:
dynamic MRAI selection and batched update processing.

Quickstart::

    from repro import skewed_topology, ExperimentSpec, ConstantMRAI, run_experiment

    topo = skewed_topology(60, seed=1)
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.05)
    result = run_experiment(topo, spec, seed=1)
    print(result.convergence_delay, result.messages_sent)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
figure-by-figure reproduction record.
"""

__version__ = "1.0.0"

from repro.bgp import BGPConfig, BGPNetwork, ConstantMRAI, DampingConfig
from repro.bgp.policy import (
    ASRelationships,
    GaoRexfordPolicy,
    infer_relationships,
    infer_relationships_hierarchical,
)
from repro.bgp.session import SessionConfig
from repro.core import (
    AdaptiveExtentMRAI,
    DegreeDependentMRAI,
    DynamicMRAI,
    ExperimentResult,
    ExperimentSpec,
    Series,
    TrialResult,
    failure_size_sweep,
    mrai_sweep,
    recommend_ladder,
    recommend_mrai,
    run_experiment,
    run_trials,
    validate_routing,
)
from repro.failures import (
    FailureScenario,
    geographic_failure,
    random_failure,
    single_node_failure,
)
from repro.obs import (
    EventLoopProfiler,
    MetricsRegistry,
    NetworkProbe,
    ObsSession,
    RunManifest,
    observe,
)
from repro.topology import (
    InternetDegreeDistribution,
    MultiRouterSpec,
    SkewedDegreeSpec,
    Topology,
    barabasi_albert_topology,
    glp_topology,
    internet_like_topology,
    multi_router_topology,
    skewed_topology,
    waxman_topology,
)

__all__ = [
    "ASRelationships",
    "AdaptiveExtentMRAI",
    "BGPConfig",
    "BGPNetwork",
    "ConstantMRAI",
    "DampingConfig",
    "DegreeDependentMRAI",
    "DynamicMRAI",
    "EventLoopProfiler",
    "ExperimentResult",
    "ExperimentSpec",
    "FailureScenario",
    "GaoRexfordPolicy",
    "MetricsRegistry",
    "NetworkProbe",
    "ObsSession",
    "RunManifest",
    "SessionConfig",
    "InternetDegreeDistribution",
    "MultiRouterSpec",
    "Series",
    "SkewedDegreeSpec",
    "Topology",
    "TrialResult",
    "__version__",
    "barabasi_albert_topology",
    "failure_size_sweep",
    "geographic_failure",
    "glp_topology",
    "infer_relationships",
    "infer_relationships_hierarchical",
    "internet_like_topology",
    "mrai_sweep",
    "multi_router_topology",
    "observe",
    "random_failure",
    "recommend_ladder",
    "recommend_mrai",
    "run_experiment",
    "run_trials",
    "single_node_failure",
    "skewed_topology",
    "validate_routing",
    "waxman_topology",
]
