"""Discrete-event simulation kernel.

This subpackage is the stand-in for the SSFNet simulation core used by the
paper: a deterministic event heap with a floating-point clock, cancellable
events, restartable timers with RFC-1771-style jitter, named pseudo-random
streams derived from a single master seed, and lightweight tracing/statistics
utilities.

The kernel is deliberately protocol-agnostic; everything BGP-specific lives in
:mod:`repro.bgp`.
"""

from repro.sim.engine import Simulator, SimulationError
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RandomStreams
from repro.sim.stats import OnlineStats, SlidingWindowUtilization
from repro.sim.timers import Jitter, Timer
from repro.sim.trace import Counter, NullTracer, Tracer, TraceRecord

__all__ = [
    "Counter",
    "Event",
    "EventQueue",
    "Jitter",
    "NullTracer",
    "OnlineStats",
    "RandomStreams",
    "SimulationError",
    "Simulator",
    "SlidingWindowUtilization",
    "Timer",
    "TraceRecord",
    "Tracer",
]
