"""Restartable timers with RFC-1771-style jitter.

RFC 1771 (Sec 9.2.1.1) requires BGP timers — MinRouteAdvertisementInterval in
particular — to be jittered to avoid synchronized update waves: the configured
value is multiplied by a uniform random factor in [0.75, 1.0], i.e. "a
reduction of up to 25%", which is exactly how the paper describes its setup.

:class:`Timer` wraps an engine event with start/stop/restart semantics and an
optional :class:`Jitter` policy, so protocol code never touches raw events.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.events import Event


class Jitter:
    """Multiplicative jitter: duration is scaled by Uniform(low, high).

    The RFC-1771 default is ``Jitter(0.75, 1.0)``; ``Jitter.none()`` disables
    jitter entirely (useful in unit tests that need exact expiry times).
    """

    __slots__ = ("low", "high")

    def __init__(self, low: float = 0.75, high: float = 1.0) -> None:
        if not (0.0 < low <= high):
            raise ValueError(f"invalid jitter range [{low}, {high}]")
        self.low = low
        self.high = high

    @classmethod
    def none(cls) -> "Jitter":
        """A degenerate jitter that leaves durations unchanged."""
        return cls(1.0, 1.0)

    def apply(self, duration: float, rng: random.Random) -> float:
        """Scale ``duration`` by a factor drawn from this jitter range."""
        if self.low == self.high:
            return duration * self.low
        return duration * rng.uniform(self.low, self.high)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Jitter({self.low}, {self.high})"


class Timer:
    """A restartable one-shot timer.

    Parameters
    ----------
    sim:
        The owning simulator.
    callback:
        Called (with ``*args``) when the timer expires.
    jitter:
        Jitter policy applied to every ``start``; default RFC-1771.
    rng:
        Random stream used for jitter draws.  Required unless jitter is
        disabled.
    """

    __slots__ = ("sim", "callback", "args", "jitter", "rng", "_event", "_expiry")

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[..., Any],
        *args: Any,
        jitter: Optional[Jitter] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        self.callback = callback
        self.args = args
        self.jitter = jitter if jitter is not None else Jitter()
        if rng is None and self.jitter.low != self.jitter.high:
            raise ValueError("a random stream is required for jittered timers")
        self.rng = rng
        self._event: Optional[Event] = None
        self._expiry: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the timer is currently armed."""
        return self._event is not None and not self._event.cancelled

    @property
    def expiry(self) -> Optional[float]:
        """Absolute expiry time while armed, else ``None``."""
        return self._expiry if self.running else None

    def remaining(self) -> float:
        """Seconds until expiry (0.0 when not running)."""
        if not self.running or self._expiry is None:
            return 0.0
        return max(0.0, self._expiry - self.sim.now)

    # ------------------------------------------------------------------
    def start(self, duration: float) -> float:
        """Arm the timer for (jittered) ``duration`` seconds.

        Restarting a running timer cancels the previous expiry.  Returns the
        actual (post-jitter) duration used.
        """
        if duration < 0:
            raise ValueError(f"negative timer duration {duration!r}")
        self.stop()
        actual = self.jitter.apply(duration, self.rng) if self.rng else duration
        self._expiry = self.sim.now + actual
        self._event = self.sim.schedule(actual, self._fire)
        return actual

    def stop(self) -> None:
        """Disarm the timer.  Idempotent."""
        if self._event is not None and not self._event.cancelled:
            self.sim.cancel(self._event)
        self._event = None
        self._expiry = None

    def _fire(self) -> None:
        self._event = None
        self._expiry = None
        self.callback(*self.args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"expires@{self._expiry:.6f}" if self.running else "idle"
        return f"<Timer {state}>"
