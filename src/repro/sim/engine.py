"""The simulation engine.

:class:`Simulator` owns the clock, the event queue, the random streams and an
optional tracer.  It runs events strictly in timestamp order until the queue
drains (*quiescence*), a time horizon is reached, or an event budget is
exhausted.

Quiescence-driven termination is what makes convergence measurement natural:
a BGP network that has converged schedules no further events, so
``sim.run()`` returns exactly when the protocol has gone silent.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue
from repro.sim.rng import RandomStreams
from repro.sim.trace import NullTracer, Tracer

#: Signature of the optional event-loop hook: ``(event, elapsed_seconds)``.
OnEventHook = Callable[[Event, float], None]


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (e.g. scheduling in the past)."""


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all random streams (see :class:`RandomStreams`).
        Two simulators built with the same seed and the same scheduling
        sequence produce bit-identical runs.
    tracer:
        Optional :class:`~repro.sim.trace.Tracer`; defaults to a no-op.
    on_event:
        Optional observability hook called after each executed event with
        ``(event, elapsed_wall_seconds)``; when unset the event loop takes
        a timing-free fast path.  The hook is sampled once per
        :meth:`run` call, so attach profilers *before* running.  See
        :class:`repro.obs.profiling.EventLoopProfiler`.
    """

    def __init__(
        self,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        on_event: Optional[OnEventHook] = None,
    ) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self.rng = RandomStreams(seed)
        self.tracer = tracer if tracer is not None else NullTracer()
        self.on_event = on_event
        self._events_executed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    def peek_next_time(self) -> Optional[float]:
        """Timestamp of the next event, or ``None`` when quiescent."""
        return self._queue.peek_time()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self._queue.push(self._now + delay, fn, args, priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, clock already at {self._now!r}"
            )
        return self._queue.push(time, fn, args, priority)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event.  Idempotent."""
        if not event.cancelled:
            self._queue.note_cancelled(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run until quiescence, the ``until`` horizon, or ``max_events``.

        Returns the simulation time at which execution stopped.  When the
        queue *drains* the clock stays at the last executed event (so a
        convergence time can be read off directly and a later run still has
        its full horizon); when stopping *on the horizon* the clock advances
        to ``until`` so relative scheduling afterwards is anchored there.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        hook = self.on_event
        try:
            budget = max_events if max_events is not None else -1
            while self._queue:
                next_time = self._queue.peek_time()
                assert next_time is not None
                if until is not None and next_time > until:
                    self._now = max(self._now, until)
                    return self._now
                if budget == 0:
                    return self._now
                event = self._queue.pop()
                self._now = event.time
                self._events_executed += 1
                if budget > 0:
                    budget -= 1
                if hook is None:
                    event.fn(*event.args)
                else:
                    start = perf_counter()
                    event.fn(*event.args)
                    hook(event, perf_counter() - start)
            return self._now
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute a single event.  Returns ``False`` when quiescent."""
        if not self._queue:
            return False
        event = self._queue.pop()
        self._now = event.time
        self._events_executed += 1
        hook = self.on_event
        if hook is None:
            event.fn(*event.args)
        else:
            start = perf_counter()
            event.fn(*event.args)
            hook(event, perf_counter() - start)
        return True

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero.

        Random streams are *not* reseeded; construct a new simulator for a
        statistically independent run.
        """
        self._queue.clear()
        self._now = 0.0
        self._events_executed = 0
