"""Named pseudo-random streams.

A simulation study needs *repeatable* randomness that is also *decoupled*:
changing how many random numbers the topology generator draws must not
perturb the jitter applied to MRAI timers three modules away.  SSFNet solves
this with per-entity RNGs; we do the same with named streams, each an
independent :class:`random.Random` seeded from the master seed and the stream
name via a stable hash.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit stream seed from ``master_seed`` and ``name``.

    Uses BLAKE2b rather than ``hash()`` so the derivation is stable across
    processes and Python versions (``PYTHONHASHSEED`` does not affect it).
    """
    digest = hashlib.blake2b(
        name.encode("utf-8"),
        key=master_seed.to_bytes(16, "little", signed=False),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "little")


class RandomStreams:
    """A family of independent named random streams.

    >>> streams = RandomStreams(seed=42)
    >>> jitter = streams.get("mrai-jitter")
    >>> service = streams.get("processing-delay")
    >>> jitter is streams.get("mrai-jitter")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child family whose master seed is derived from ``name``.

        Useful for giving each trial of a multi-trial experiment its own
        independent universe of streams.
        """
        return RandomStreams(derive_seed(self.seed, f"spawn:{name}") >> 1)

    def uniform(self, name: str, lo: float, hi: float) -> float:
        """Draw Uniform(lo, hi) from stream ``name``."""
        return self.get(name).uniform(lo, hi)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"
