"""Event objects and the pending-event queue.

Events are ordered by ``(time, priority, sequence)``.  The sequence number is
a monotonically increasing integer assigned at scheduling time, which makes
the simulation fully deterministic: two events scheduled for the same instant
fire in scheduling order, regardless of heap internals.

Cancellation is *lazy*: a cancelled event stays in the heap but is skipped
when popped.  This is the standard trick for binary-heap event queues; it
keeps cancellation O(1) at the cost of a little heap garbage, which
:meth:`EventQueue.compact` can reclaim when the garbage ratio grows.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator, Optional


class Event:
    """A scheduled callback.

    Instances are created by :class:`~repro.sim.engine.Simulator.schedule`;
    user code normally only holds on to them in order to :meth:`cancel`.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it.  Idempotent."""
        self.cancelled = True

    # Heap ordering ------------------------------------------------------
    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} seq={self.seq} {name} [{state}]>"


class EventQueue:
    """Deterministic binary-heap priority queue of :class:`Event` objects."""

    #: Compact the heap when more than this fraction of entries are dead.
    GARBAGE_RATIO = 0.5
    #: ... but never bother compacting heaps smaller than this.
    MIN_COMPACT_SIZE = 4096

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._cancelled = 0

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled

    def __bool__(self) -> bool:
        return len(self) > 0

    def push(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at ``time`` and return the event handle."""
        event = Event(time, priority, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises :class:`IndexError` when no live events remain.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            return event
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1
        if self._heap:
            return self._heap[0].time
        return None

    def note_cancelled(self, event: Event) -> None:
        """Record that ``event`` (still in the heap) has been cancelled."""
        if not event.cancelled:
            event.cancel()
        self._cancelled += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        if (
            len(self._heap) >= self.MIN_COMPACT_SIZE
            and self._cancelled > len(self._heap) * self.GARBAGE_RATIO
        ):
            self.compact()

    def compact(self) -> None:
        """Physically remove cancelled events and re-heapify."""
        self._heap = [e for e in self._heap if not e.cancelled]
        self._cancelled = 0
        heapq.heapify(self._heap)

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._cancelled = 0

    def iter_pending(self) -> Iterator[Event]:
        """Iterate over live events in arbitrary (heap) order."""
        return (e for e in self._heap if not e.cancelled)
