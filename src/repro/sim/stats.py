"""Online statistics used by monitors and the analysis layer.

:class:`OnlineStats` is Welford's single-pass mean/variance accumulator.
:class:`SlidingWindowUtilization` measures the busy fraction of a single
server over a trailing window — the signal behind the paper's
"processor utilization" variant of the dynamic MRAI scheme (Sec 4.3).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Iterable, Tuple


class OnlineStats:
    """Single-pass mean / variance / min / max (Welford's algorithm)."""

    __slots__ = ("n", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, x: float) -> None:
        """Fold one observation into the accumulator."""
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Combine two accumulators without re-streaming their samples.

        Chan et al.'s parallel update: the result is numerically the same
        accumulator that would have seen both sample streams.  Used by the
        experiment layer to fold per-trial statistics into sweep-level
        aggregates.  Neither operand is modified.
        """
        merged = OnlineStats()
        n = self.n + other.n
        if n == 0:
            return merged
        delta = other._mean - self._mean
        merged.n = n
        merged._mean = self._mean + delta * (other.n / n)
        merged._m2 = (
            self._m2 + other._m2 + delta * delta * (self.n * other.n / n)
        )
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0.0 with fewer than 2 points."""
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return self._min if self.n else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self.n else 0.0

    def confidence_interval95(self) -> Tuple[float, float]:
        """Approximate 95% CI for the mean (normal approximation).

        With n < 2 the interval degenerates to (mean, mean).
        """
        if self.n < 2:
            return (self.mean, self.mean)
        half = 1.96 * self.stdev / math.sqrt(self.n)
        return (self.mean - half, self.mean + half)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OnlineStats(n={self.n}, mean={self.mean:.6g}, sd={self.stdev:.6g})"


class SlidingWindowUtilization:
    """Busy-fraction of a single server over a trailing time window.

    The server reports ``(start, end)`` busy intervals via :meth:`add_busy`;
    :meth:`utilization` returns the fraction of the trailing ``window``
    seconds (ending at ``now``) during which the server was busy.  Intervals
    older than the window are evicted lazily.
    """

    __slots__ = ("window", "_intervals")

    def __init__(self, window: float = 1.0) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._intervals: Deque[Tuple[float, float]] = deque()

    def add_busy(self, start: float, end: float) -> None:
        """Record a busy interval; intervals must be added in start order."""
        if end < start:
            raise ValueError(f"interval ends before it starts: ({start}, {end})")
        self._intervals.append((start, end))

    def utilization(self, now: float) -> float:
        """Busy fraction over [now - window, now], clipped to [0, 1]."""
        horizon = now - self.window
        while self._intervals and self._intervals[0][1] <= horizon:
            self._intervals.popleft()
        busy = 0.0
        for start, end in self._intervals:
            lo = max(start, horizon)
            hi = min(end, now)
            if hi > lo:
                busy += hi - lo
        return min(1.0, busy / self.window)

    def clear(self) -> None:
        self._intervals.clear()
