"""Tracing and counting utilities.

The experiments in the paper report two kinds of observables: *times* (the
convergence delay) and *counts* (update messages generated).  The tracer
records timestamped protocol events when enabled; :class:`Counter` provides
cheap named counters that are always on.

Tracing is structured (records, not strings) so tests can assert on protocol
behaviour without parsing log text.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import CounterMetric, MetricsRegistry


@dataclass(frozen=True)
class TraceRecord:
    """One traced protocol event."""

    time: float
    category: str
    node: Optional[int]
    detail: Tuple[Any, ...] = ()

    def __str__(self) -> str:
        where = f"node={self.node}" if self.node is not None else "-"
        extras = " ".join(str(d) for d in self.detail)
        return f"[{self.time:12.6f}] {self.category:<18} {where} {extras}"

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready view (detail tuples become lists)."""
        return {
            "time": self.time,
            "category": self.category,
            "node": self.node,
            "detail": [
                list(d) if isinstance(d, tuple) else d for d in self.detail
            ],
        }


class JsonlSink:
    """A tracer sink writing each record as one JSON line.

    Usable directly as the ``sink=`` argument of :class:`Tracer` and as a
    context manager::

        with JsonlSink("trace.jsonl") as sink:
            tracer = Tracer(sink=sink, keep=False)
            ...
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", encoding="utf-8")
        self.records_written = 0

    def __call__(self, record: TraceRecord) -> None:
        self._fh.write(json.dumps(record.to_dict(), sort_keys=True))
        self._fh.write("\n")
        self.records_written += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def jsonl_sink(path: Union[str, Path]) -> JsonlSink:
    """Open a :class:`JsonlSink` at ``path`` (convenience constructor)."""
    return JsonlSink(path)


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally filtered by category.

    Parameters
    ----------
    categories:
        When given, only these categories are recorded; everything else is
        dropped at emit time.
    sink:
        Optional callable invoked with each accepted record (e.g. ``print``
        or a file writer); records are retained in memory either way unless
        ``keep`` is False.
    max_records:
        When set, at most this many records are retained in memory;
        older records are dropped first and counted in :attr:`dropped`.
        Sinks still see every record, so a bounded tracer can front an
        unbounded :class:`JsonlSink`.  ``None`` (the default) keeps
        everything.
    """

    def __init__(
        self,
        categories: Optional[set[str]] = None,
        sink: Optional[Callable[[TraceRecord], None]] = None,
        keep: bool = True,
        max_records: Optional[int] = None,
    ) -> None:
        if max_records is not None and max_records <= 0:
            raise ValueError("max_records must be positive (or None)")
        self.categories = categories
        self.sink = sink
        self.keep = keep
        self.max_records = max_records
        #: Records dropped (oldest-first) to honour ``max_records``.
        self.dropped = 0
        self.records: Union[List[TraceRecord], Deque[TraceRecord]] = (
            [] if max_records is None else deque(maxlen=max_records)
        )

    @property
    def enabled(self) -> bool:
        return True

    def emit(
        self,
        time: float,
        category: str,
        node: Optional[int] = None,
        *detail: Any,
    ) -> None:
        """Record one event (subject to the category filter)."""
        if self.categories is not None and category not in self.categories:
            return
        record = TraceRecord(time, category, node, tuple(detail))
        if self.keep:
            if (
                self.max_records is not None
                and len(self.records) == self.max_records
            ):
                # The deque's maxlen evicts the oldest record on append.
                self.dropped += 1
            self.records.append(record)
        if self.sink is not None:
            self.sink(record)

    def by_category(self, category: str) -> Iterator[TraceRecord]:
        """Iterate the retained records of one category."""
        return (r for r in self.records if r.category == category)

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)


class NullTracer(Tracer):
    """A tracer that drops everything; the default for production runs."""

    def __init__(self) -> None:
        super().__init__(keep=False)

    @property
    def enabled(self) -> bool:
        return False

    def emit(self, *args: Any, **kwargs: Any) -> None:  # noqa: D102
        return


class Counter:
    """A bag of named integer counters.

    >>> c = Counter()
    >>> c.incr("updates_sent")
    >>> c.incr("updates_sent", 2)
    >>> c["updates_sent"]
    3

    When constructed with a :class:`~repro.obs.metrics.MetricsRegistry`,
    every increment is mirrored into a registry counter of the same name,
    so the legacy network-wide counters and the structured metrics layer
    stay in lock-step.  ``reset`` only clears the local view — registry
    counters are cumulative by design.
    """

    __slots__ = ("values", "_registry", "_mirror")

    def __init__(
        self,
        values: Optional[Dict[str, int]] = None,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.values: Dict[str, int] = dict(values) if values else {}
        self._registry = registry
        #: Cache of registry children, so the hot path skips the registry
        #: lookup after the first increment of each name.
        self._mirror: Dict[str, "CounterMetric"] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        self.values[name] = self.values.get(name, 0) + amount
        if self._registry is not None:
            child = self._mirror.get(name)
            if child is None:
                child = self._registry.counter(name)
                self._mirror[name] = child
            child.inc(amount)

    def __getitem__(self, name: str) -> int:
        return self.values.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """A copy of the current counter values."""
        return dict(self.values)

    def diff(self, baseline: Dict[str, int]) -> Dict[str, int]:
        """Per-counter difference against an earlier :meth:`snapshot`."""
        keys = set(self.values) | set(baseline)
        return {k: self.values.get(k, 0) - baseline.get(k, 0) for k in keys}

    def reset(self) -> None:
        self.values.clear()
