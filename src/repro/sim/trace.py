"""Tracing and counting utilities.

The experiments in the paper report two kinds of observables: *times* (the
convergence delay) and *counts* (update messages generated).  The tracer
records timestamped protocol events when enabled; :class:`Counter` provides
cheap named counters that are always on.

Tracing is structured (records, not strings) so tests can assert on protocol
behaviour without parsing log text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One traced protocol event."""

    time: float
    category: str
    node: Optional[int]
    detail: Tuple[Any, ...] = ()

    def __str__(self) -> str:
        where = f"node={self.node}" if self.node is not None else "-"
        extras = " ".join(str(d) for d in self.detail)
        return f"[{self.time:12.6f}] {self.category:<18} {where} {extras}"


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally filtered by category.

    Parameters
    ----------
    categories:
        When given, only these categories are recorded; everything else is
        dropped at emit time.
    sink:
        Optional callable invoked with each accepted record (e.g. ``print``
        or a file writer); records are retained in memory either way unless
        ``keep`` is False.
    """

    def __init__(
        self,
        categories: Optional[set[str]] = None,
        sink: Optional[Callable[[TraceRecord], None]] = None,
        keep: bool = True,
    ) -> None:
        self.categories = categories
        self.sink = sink
        self.keep = keep
        self.records: List[TraceRecord] = []

    @property
    def enabled(self) -> bool:
        return True

    def emit(
        self,
        time: float,
        category: str,
        node: Optional[int] = None,
        *detail: Any,
    ) -> None:
        """Record one event (subject to the category filter)."""
        if self.categories is not None and category not in self.categories:
            return
        record = TraceRecord(time, category, node, tuple(detail))
        if self.keep:
            self.records.append(record)
        if self.sink is not None:
            self.sink(record)

    def by_category(self, category: str) -> Iterator[TraceRecord]:
        """Iterate the retained records of one category."""
        return (r for r in self.records if r.category == category)

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)


class NullTracer(Tracer):
    """A tracer that drops everything; the default for production runs."""

    def __init__(self) -> None:
        super().__init__(keep=False)

    @property
    def enabled(self) -> bool:
        return False

    def emit(self, *args: Any, **kwargs: Any) -> None:  # noqa: D102
        return


@dataclass
class Counter:
    """A bag of named integer counters.

    >>> c = Counter()
    >>> c.incr("updates_sent")
    >>> c.incr("updates_sent", 2)
    >>> c["updates_sent"]
    3
    """

    values: Dict[str, int] = field(default_factory=dict)

    def incr(self, name: str, amount: int = 1) -> None:
        self.values[name] = self.values.get(name, 0) + amount

    def __getitem__(self, name: str) -> int:
        return self.values.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """A copy of the current counter values."""
        return dict(self.values)

    def diff(self, baseline: Dict[str, int]) -> Dict[str, int]:
        """Per-counter difference against an earlier :meth:`snapshot`."""
        keys = set(self.values) | set(baseline)
        return {k: self.values.get(k, 0) - baseline.get(k, 0) for k in keys}

    def reset(self) -> None:
        self.values.clear()
