#!/usr/bin/env python3
"""Profile a canned convergence scenario and print the top-10 hotspots.

The standard harness for "make the simulator faster" work: runs one
warm-up + failure + convergence cycle with the event-loop profiler
attached and prints per-handler-category wall-clock accounting plus the
phase timings.  Compare before/after a change with fixed arguments:

    PYTHONPATH=src python tools/profile_run.py
    PYTHONPATH=src python tools/profile_run.py --nodes 200 --failure 0.2 \\
        --scheme dynamic --queue dest_batch --out out/profile
"""

from __future__ import annotations

import argparse

from repro.bgp.mrai import ConstantMRAI
from repro.core.dynamic_mrai import DynamicMRAI
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.obs import ObsSession
from repro.topology.skewed import skewed_topology


def make_spec(args: argparse.Namespace) -> ExperimentSpec:
    mrai = (
        DynamicMRAI() if args.scheme == "dynamic" else ConstantMRAI(args.mrai)
    )
    return ExperimentSpec(
        mrai=mrai,
        queue_discipline=args.queue,
        failure_fraction=args.failure,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=120)
    parser.add_argument("--failure", type=float, default=0.1)
    parser.add_argument(
        "--scheme", choices=("constant", "dynamic"), default="constant"
    )
    parser.add_argument("--mrai", type=float, default=0.5)
    parser.add_argument(
        "--queue",
        choices=("fifo", "dest_batch", "dest_batch_wf", "tcp_batch"),
        default="fifo",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--out", metavar="DIR", help="also export the full obs artifacts"
    )
    args = parser.parse_args()

    topology = skewed_topology(args.nodes, seed=args.seed)
    spec = make_spec(args)
    obs = ObsSession(profile=True)

    print(
        f"profiling: {args.nodes} nodes, {args.failure:.0%} failure, "
        f"{args.scheme} MRAI, {args.queue} queue, seed {args.seed}"
    )
    result = run_experiment(topology, spec, seed=args.seed, obs=obs)

    print(
        f"\nsimulated : {result.warmup_time:.2f} s warm-up + "
        f"{result.convergence_delay:.2f} s convergence, "
        f"{result.events_executed} events"
    )
    print(
        f"wall clock: {result.warmup_wall:.2f} s warm-up + "
        f"{result.convergence_wall:.2f} s convergence "
        f"({result.events_executed / max(result.warmup_wall + result.convergence_wall, 1e-9):,.0f} events/s overall)"
    )
    print()
    print(obs.profiler.render(top_k=10))

    if args.out:
        print()
        for path in obs.export(args.out, command="tools/profile_run"):
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
