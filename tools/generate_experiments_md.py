#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from the result files in results/.

Run after ``pytest benchmarks/ --benchmark-only`` so the embedded tables
match the latest measured series::

    python tools/generate_experiments_md.py
"""

from __future__ import annotations

import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"

#: figure id -> (section title, the paper's claim, our verdict).
COMMENTARY = {
    "fig01": (
        "Fig 1 — Convergence delay for different sized failures",
        "Paper: with MRAI 0.5 s the delay is lowest for small failures but "
        '"increases sharply as the size of the failure goes up"; with '
        "1.25/2.25 s the small-failure delay is higher but growth is gentle.",
        "Reproduced. The 0.5 s curve grows ~10x from the smallest to the "
        "largest failure while the 2.25 s curve is nearly flat; the curves "
        "cross between 5% and 10%, matching the paper's qualitative picture.",
    ),
    "fig02": (
        "Fig 2 — Number of generated messages for different MRAI values",
        "Paper: message counts are similar for all MRAIs at small failures; "
        'the count for MRAI=0.5 s "shoots up" with failure size while larger '
        "MRAIs grow gradually; the message trend mirrors the delay trend.",
        "Reproduced. At the largest failure the 0.5 s configuration sends "
        "several times the messages of the 2.25 s one; at the smallest "
        "failure the counts are within ~1.1x of each other.",
    ),
    "fig03": (
        "Fig 3 — Variation in convergence delay with MRAI",
        "Paper: delay-vs-MRAI is V-shaped (Griffin-Premore); the optimum is "
        "~0.5 s at 1% failure and ~1.25 s at 5% — it grows with failure "
        "size, so no single MRAI is ideal.",
        "Reproduced. The per-size optima move right monotonically with "
        "failure size (0.25 -> 0.5 -> 1.25 s on the 60-node quick profile; "
        "absolute optima shift with network size exactly as the paper's own "
        "60/240-node checks found — see the 120-node spot checks below).",
    ),
    "fig04": (
        "Fig 4 — Convergence delay for different degree distributions",
        "Paper: at equal average degree (3.8) the optimal MRAI tracks the "
        "degree of the high-degree nodes: 50-50 (~1.0 s) < 70-30 (~1.25 s) "
        "< 85-15 (~2.25 s), because high-degree nodes overload first.",
        "Reproduced. The 50-50 optimum is at or below the 85-15 optimum in "
        "every run; the full three-way ordering holds up to one grid step "
        "of noise at quick scale.",
    ),
    "fig05": (
        "Fig 5 — Effect of average degree on convergence delay",
        "Paper: raising the average degree from 3.8 to 7.6 (50-50, highs "
        "13-14) raises both the optimal MRAI (~2 s, like 85-15's) and the "
        "delay (more alternate paths to explore).",
        "Reproduced. The dense topology's optimum sits at least as far "
        "right and its minimum delay is higher.",
    ),
    "fig06": (
        "Fig 6 — Effect of degree dependent MRAI",
        "Paper: MRAI (low 0.5, high 2.25) tracks constant-2.25 for large "
        "failures while staying much cheaper for small ones; the reversed "
        "assignment behaves like the bad constant-0.5 for large failures.",
        "Reproduced. Convergence for large failures is governed by the "
        "high-degree nodes' MRAI, exactly as the paper argues.",
    ),
    "fig07": (
        "Fig 7 — Effect of dynamic MRAI",
        "Paper: the dynamic scheme (levels 0.5/1.25/2.25, upTh 0.65 s, "
        "downTh 0.05 s) is at or below constant-0.5 for small failures, "
        "~constant-1.25 at 5%, and between 1.25 and 2.25 for large failures "
        "— near-optimal everywhere.",
        "Reproduced. The dynamic curve hugs the lower envelope of the "
        "constant curves across the whole failure range.",
    ),
    "fig08": (
        "Fig 8 — Effect of upTh on convergence delay",
        "Paper: low upTh behaves like a constant high MRAI (bad for small "
        "failures, good for large); raising upTh trades that back; 0.65 vs "
        "1.25 makes little difference — the scheme is robust over a range.",
        "Reproduced as soft checks (single-trial quick runs are noisy at "
        "small failures, as the paper's own scatter was).",
    ),
    "fig09": (
        "Fig 9 — Effect of downTh on convergence delay",
        "Paper: raising downTh makes nodes drop their MRAI sooner, hurting "
        "large failures; results are similar over a range of values.",
        "Reproduced as soft checks; the downTh=0.3 curve is never "
        "materially better than downTh=0 at the largest failure.",
    ),
    "fig10": (
        "Fig 10 — Performance of the batching scheme (delay)",
        "Paper: batching at MRAI 0.5 s cuts the large-failure delay by a "
        "factor of 3 or more while keeping small-failure delays low, beats "
        "the dynamic scheme, and batching+dynamic is better still.",
        "Reproduced. On the quick profile batching cuts the largest-failure "
        "delay ~6.6x vs constant-0.5 and tracks it at the smallest failure; "
        "at the paper's 120-node scale the cut is 8.4x (see the spot "
        "checks). Batch+dynamic lands between batching and dynamic (the "
        "paper's ordering of the combination is within noise at this scale).",
    ),
    "fig11": (
        "Fig 11 — Number of messages generated by the batching scheme",
        'Paper: batching\'s message count is much less than MRAI=0.5 and "in '
        'the same range as" MRAI=2.25.',
        "Reproduced. Batching sends a small fraction of constant-0.5's "
        "messages at the largest failure and lands within ~2-3x of "
        "constant-2.25 (at 120 nodes: 84k vs 92k — squarely 'the same "
        "range').",
    ),
    "fig12": (
        "Fig 12 — Effect of batching with different MRAIs",
        "Paper: batching helps significantly when the MRAI is below the "
        "optimum (overloaded regime) and has little impact otherwise.",
        "Reproduced. At the smallest MRAI the FIFO/batching delay ratio "
        "exceeds 1.25x; at the largest MRAI the two curves coincide within "
        "~40%.",
    ),
    "fig13": (
        "Fig 13 — Convergence delay of realistic topologies",
        "Paper: on multi-router-per-AS topologies with an Internet-derived "
        "degree distribution (max degree 40; optima 0.5 s small / 3.5 s "
        "large), batching and dynamic MRAI behave as on the synthetic "
        "topologies.",
        "Reproduced. Batching beats constant-0.5 at the largest failure "
        "while matching it for small failures; constant-3.5 shows the same "
        "good-for-large / bad-for-small tradeoff as on flat topologies.",
    ),
    "ab_per_dest_mrai": (
        "Ablation — per-peer vs per-destination MRAI timers",
        "Paper Sec 2 notes per-destination timers are the straightforward "
        "design but unscalable; the Internet runs per-peer.",
        "Both converge correctly; the granularities differ measurably under "
        "load, confirming the choice is behavioural, not cosmetic.",
    ),
    "ab_tcp_batch": (
        "Ablation — router-style TCP-buffer batching",
        "Paper Sec 4.4 (end): today's routers batch per TCP read, which "
        "dedups same-destination updates only within a batch, so its "
        'benefit "progressively decreases" for large failures.',
        "Confirmed: TCP batching tracks plain FIFO at large failures while "
        "per-destination batching is ~6x better.",
    ),
    "ab_monitors": (
        "Ablation — dynamic-MRAI overload monitors",
        "Paper Sec 4.3: queue-based unfinished work works well; processor "
        'utilization gave "promising results"; message counting "was not '
        'very successful".',
        "Confirmed qualitatively: queue-based wins, utilization helps, "
        "message-count is the weakest.",
    ),
    "ab_high_degree_only": (
        "Ablation — dynamic MRAI at high-degree nodes only",
        "Paper Sec 4.3: restricting the dynamic scheme to high-degree nodes "
        'was "effectively the same" because low-degree nodes never overload.',
        "Confirmed within noise.",
    ),
    "ab_failure_geometry": (
        "Ablation — geographic vs scattered failures",
        "Paper Sec 3.1 uses contiguous regions; scattered failures of equal "
        "size are the natural control.",
        "Both geometries converge; series recorded for comparison.",
    ),
    "ab_withdrawal_rl": (
        "Ablation — withdrawal rate limiting",
        "RFC 1771 exempts withdrawals from the MRAI; the rate-limited "
        "variant is the configuration Labovitz et al. modeled.",
        "Message counts and delays differ; the integration suite separately "
        "shows the Labovitz clique bound (n-3) x MRAI is met exactly under "
        "rate limiting and collapses to wire speed without it.",
    ),
    "ab_processing": (
        "Ablation — the processing-overhead model",
        'Paper Sec 5: "If the processing delays are so small that the BGP '
        "routers do not get overloaded, then the convergence delays will be "
        'unchanged" by the schemes.',
        "Confirmed exactly: with zero-cost processing, batching changes "
        "nothing (ratio ~1.1) and delays are flat; with uniform(1,30) ms "
        "the meltdown and the 6.6x batching win appear.",
    ),
    "ab_future_work": (
        "Ablation — the paper's future-work schemes, implemented",
        "Paper Sec 5 asks for (a) a scheme that sets the MRAI from the "
        "extent of failure, (b) batching that removes more superfluous "
        "updates, and (c) a theory for choosing parameters.",
        "All three implemented and measured: the failure-extent-adaptive "
        "MRAI beats the constant-low meltdown with the fewest messages of "
        "any scheme; withdrawal-first batching matches or beats plain "
        "batching; the analytically derived ladder (repro.core.theory) "
        "works unmodified from first principles, at some cost vs the "
        "hand-tuned ladder.",
    ),
    "ab_detection_delay": (
        "Ablation — hold-timer failure detection",
        "The paper assumes sessions drop at the failure instant; real BGP "
        "waits out the hold timer.",
        "Detection delay adds roughly additively and does not change which "
        "scheme wins.  (The explicit-session mode in repro.bgp.session "
        "makes detection fully emergent — see tests/test_bgp_sessions.py.)",
    ),
    "ab_flap_damping": (
        "Ablation — RFC-2439 route flap damping",
        "Flap damping was the deployed answer to update storms in the "
        "paper's era; Mao et al. (2002) showed it suppresses legitimate "
        "recovery routes after single events.",
        "Damping does cut the overload meltdown (it suppresses exploration "
        "updates) but batching achieves a substantially larger cut with "
        "zero suppression — no prefix is ever blackholed.  The genuine-flap "
        "use case (fail/recover cycles) is exercised in "
        "tests/test_bgp_recovery.py.",
    ),
    "ab_policy_routing": (
        "Ablation — Gao-Rexford policies vs no policy",
        'The paper runs with "no policy based restrictions", maximizing '
        "the path-exploration space.",
        "Under hierarchy-preserving Gao-Rexford policies (valley-free "
        "export, customer > peer > provider import), the exploration space "
        "collapses: an order of magnitude fewer messages and far faster "
        "convergence at every failure size — consistent with Labovitz et "
        "al.'s INFOCOM 2001 finding that policy hierarchy bounds "
        "convergence.  The paper's no-policy setting is thus the *hard* "
        "case for its schemes.",
    ),
}

ORDER = [f"fig{i:02d}" for i in range(1, 14)] + [
    "ab_per_dest_mrai",
    "ab_tcp_batch",
    "ab_monitors",
    "ab_high_degree_only",
    "ab_failure_geometry",
    "ab_withdrawal_rl",
    "ab_processing",
    "ab_future_work",
    "ab_detection_delay",
    "ab_flap_damping",
    "ab_policy_routing",
]

HEADER = """# EXPERIMENTS — paper vs. measured

Reproduction record for every figure of *Improving BGP Convergence Delay
for Large-Scale Failures* (DSN 2006), plus the ablations this repository
adds.  The paper's evaluation consists of 13 figures and no tables.

## Methodology

* Every table below is regenerated by `pytest benchmarks/ --benchmark-only`
  through the shared harness in `repro.figures`; the raw outputs (text +
  CSV) live in `results/`, and `repro-bgp sweep --figure <id>` reproduces
  any single one.  This file itself is regenerated by
  `python tools/generate_experiments_md.py`.
* Numbers shown are from the **quick** profile: 60-node topologies
  (48-AS multi-router for Fig 13), one trial per point, coarse sweep
  grids, deterministic seeds.  `REPRO_BENCH_SCALE=full` re-runs everything
  at the paper's 120-node scale with 3 trials per point.
* We reproduce **shapes**, not absolute seconds: our substrate is a
  reimplemented simulator, and the paper itself reports that absolute
  delays scale with network size while trends persist (its own 60- and
  240-node checks).  Each figure carries machine-checked *shape checks*
  encoding the paper's claims; `[PASS]` markers below are asserted by the
  benchmark suite (strict) or recorded (soft).
* Every figure's scheme list is a registered *scheme set* of declarative
  scheme dicts (`repro.specs`, see `docs/SPECS.md`), so each column
  below can be re-run standalone from a campaign file or the CLI.
* Full-scale (120-node) verification runs are recorded at the end.

"""

FOOTER_TEMPLATE = """## Full-scale verification (120 nodes — the paper's size)

### The Fig 10/11 scheme set, 120-node 70-30 topology, single seed

```
{fullspot}
```

Everything the paper claims is visible at its own scale: batching cuts
the constant-0.5 meltdown at 20% failures by **8.4x** (189 s -> 22.5 s;
the paper reports "a factor of 3 or more"), keeps the smallest-failure
delay at the constant-0.5 level (10.9 vs 11.0 s), and sends messages in
the constant-2.25 range (84k vs 92k at 20%) instead of constant-0.5's
591k.  The dynamic scheme matches constant-0.5 for the smallest failures
and stays far below it for large ones.

### Per-failure-size optimal MRAI, 120-node 70-30 topology

| failure | MRAI 0.5 s | MRAI 1.25 s | MRAI 2.25 s | optimum |
|---|---|---|---|---|
| 1% | **11.7 s** | 25.0 s | 45.2 s | 0.5 s |
| 5% | **21.1 s** | 29.8 s | 39.3 s | ~0.5-1.25 s |
| 10% | 172.1 s | **34.9 s** | 51.5 s | 1.25 s |
| 20% | 514.5 s | 193.3 s | **70.1 s** | 2.25 s |

The optimum moves right with failure size — the paper's central
observation (its Fig 3 reports 0.5 s at 1% and 1.25 s at 5% on its
hardware; our crossover sits between 5% and 10%, one grid step away,
with identical structure).

## Validation against theory

Beyond the figures, the simulator is validated against the analytic
models the paper cites (see `tests/test_integration_models.py` and
`tests/test_regression_golden.py`):

* **Labovitz et al.**: convergence after a withdrawal in a clique of
  n nodes takes exactly `(n-3) x MRAI` when updates (including
  withdrawals) are rate-limited — our simulator matches the bound to
  within link delays for n = 4..8, and shows why RFC 1771's immediate
  withdrawals collapse it to wire speed.
* **Griffin & Premore**: delay grows linearly in the MRAI above the
  optimum (doubling the MRAI doubles the clique delay).
* **Routing invariants**: after every experiment in the integration and
  property-based suites, the converged state satisfies reachability
  completeness/soundness, AS-path realizability and forwarding loop
  freedom (`repro.core.validation`); Gao-Rexford networks are checked
  against a valley-free reachability oracle instead.
"""


def main() -> None:
    parts = [HEADER]
    for figure_id in ORDER:
        title, paper_claim, verdict = COMMENTARY[figure_id]
        parts.append(f"## {title}\n")
        parts.append(f"**Paper:** {paper_claim}\n")
        parts.append("**Measured (quick profile):**\n")
        result_file = RESULTS / f"{figure_id}_quick.txt"
        if result_file.exists():
            parts.append("```\n" + result_file.read_text().strip() + "\n```\n")
        else:
            parts.append("*(run `pytest benchmarks/` to generate)*\n")
        parts.append(f"**Verdict:** {verdict}\n")
    fullspot_file = RESULTS / "fig10_fullspot.txt"
    fullspot = (
        fullspot_file.read_text().strip()
        if fullspot_file.exists()
        else "(regenerate with the 120-node sweep; see EXPERIMENTS history)"
    )
    parts.append(FOOTER_TEMPLATE.format(fullspot=fullspot))
    output = ROOT / "EXPERIMENTS.md"
    output.write_text("\n".join(parts), encoding="utf-8")
    print(f"wrote {output} ({len(chr(10).join(parts).splitlines())} lines)")


if __name__ == "__main__":
    main()
