#!/usr/bin/env python3
"""Benchmark parallel trial execution on a Fig-1-style sweep.

Runs the same failure-size sweep (constant MRAI, skewed topology) under
each requested ``--jobs`` value, reports wall time, trials/sec, speedup
over the serial baseline and aggregate events/sec, and asserts the swept
series are bit-identical across backends — the determinism contract of
:mod:`repro.core.parallel`.  Each run *appends* a timestamped record to
the ``history`` list in ``BENCH_sweep.json`` (legacy single-record files
are converted in place), so the perf trajectory across commits/PRs is
preserved rather than overwritten:

    PYTHONPATH=src python tools/bench_sweep.py
    PYTHONPATH=src python tools/bench_sweep.py --jobs 1 2 4 8 \\
        --nodes 80 --out results/BENCH_sweep.json

``--smoke`` shrinks everything for CI: a 30-node topology, one fraction,
two seeds, jobs 1 and 2.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bgp.mrai import ConstantMRAI
from repro.core.experiment import ExperimentSpec
from repro.core.parallel import pool_stats, shutdown_worker_pool
from repro.core.sweep import Series, failure_size_sweep
from repro.obs.manifest import host_fingerprint
from repro.topology.skewed import skewed_topology


def run_sweep(
    nodes: int,
    fractions: Sequence[float],
    seeds: Sequence[int],
    jobs: int,
) -> Series:
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5))
    return failure_size_sweep(
        lambda seed: skewed_topology(nodes, seed=seed),
        spec,
        fractions,
        seeds,
        jobs=jobs,
    )


def series_signature(series: Series) -> List[Dict]:
    """The numbers the identity assertion compares across backends."""
    return [
        {
            "x": p.x,
            "mean_delay": p.result.mean_delay,
            "mean_messages": p.result.mean_messages,
            "delays": [t.convergence_delay for t in p.result.trials],
        }
        for p in series.points
    ]


def total_events(series: Series) -> int:
    return sum(
        t.events_executed for p in series.points for t in p.result.trials
    )


def load_history(path: Path) -> List[Dict]:
    """Existing benchmark records at ``path`` (legacy files converted).

    Pre-history files held one record at the top level; that record
    becomes the first history entry so no measurement is ever lost.
    Unreadable files start a fresh history rather than aborting a bench.
    """
    if not path.exists():
        return []
    try:
        existing = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return []
    if not isinstance(existing, dict):
        return []
    history = existing.get("history")
    if isinstance(history, list):
        return history
    if existing.get("kind") == "BENCH_sweep":
        legacy = {k: v for k, v in existing.items() if k != "kind"}
        return [legacy]
    return []


def pool_row(jobs: int, tasks: int) -> Optional[Dict]:
    """The warm-pool counters behind one benched jobs value.

    Each jobs value runs against a freshly started pool (the bench shuts
    the previous one down), so the process-wide totals at this point
    *are* that run's stats: cache hit rate, mean chunk size, worker
    reuse across the sweep's points, and the one-off spin-up cost.
    """
    if jobs <= 1:
        return None
    totals = pool_stats()
    hits = int(totals["cache_hits"])
    misses = int(totals["cache_misses"])
    chunks = int(totals["chunks"]) or 1
    return {
        "pool_runs": int(totals["runs"]),
        "chunks": int(totals["chunks"]),
        "chunk_size_mean": round(tasks / chunks, 2),
        "topology_cache_hits": hits,
        "topology_cache_misses": misses,
        "topology_cache_hit_rate": round(
            hits / (hits + misses), 4
        )
        if hits + misses
        else 0.0,
        "evictions": int(totals["evictions"]),
        "shipped_topologies": int(totals["shipped_topologies"]),
        "workers_spawned": int(totals["workers_spawned"]),
        "workers_reused": int(totals["workers_reused"]),
        "spinup_seconds": round(totals["spinup_seconds"], 4),
    }


def parse_speedup_floors(specs: Sequence[str]) -> List[Tuple[int, float]]:
    """Parse repeated ``--assert-speedup JOBS:FLOOR`` arguments."""
    floors = []
    for raw in specs:
        try:
            jobs_part, floor_part = raw.split(":", 1)
            floors.append((int(jobs_part), float(floor_part)))
        except ValueError as exc:
            raise SystemExit(
                f"--assert-speedup expects JOBS:FLOOR, got {raw!r}"
            ) from exc
    return floors


def check_speedup_floors(
    rows: List[Dict], floors: List[Tuple[int, float]]
) -> bool:
    """Enforce speedup floors where the host can physically meet them.

    Parallel speedup needs cores: a floor for jobs=N is only meaningful
    when the machine has at least N of them (CI runners do; a 1-core
    container cannot beat serial no matter how warm the pool is).  Under-
    provisioned hosts get a visible skip, not a spurious failure.
    Returns True when any enforceable floor was missed.
    """
    cores = os.cpu_count() or 1
    failed = False
    for jobs, floor in floors:
        row = next((r for r in rows if r["jobs"] == jobs), None)
        if row is None:
            print(f"perf: jobs={jobs} was not benched; cannot assert floor")
            failed = True
            continue
        if cores < jobs:
            print(
                f"perf: host has {cores} core(s) < jobs={jobs}; "
                f"speedup floor {floor:.2f}x not enforceable here — skipped"
            )
            continue
        verdict = "ok" if row["speedup"] >= floor else "BELOW FLOOR"
        print(
            f"perf: jobs={jobs} speedup {row['speedup']:.2f}x "
            f"(floor {floor:.2f}x) — {verdict}"
        )
        failed = failed or row["speedup"] < floor
    return failed


def serial_wall(record: Dict) -> float | None:
    """The jobs=1 wall time of a benchmark record, if present."""
    for row in record.get("runs", []):
        if row.get("jobs") == 1:
            wall = row.get("wall_seconds")
            return float(wall) if isinstance(wall, (int, float)) else None
    return None


def check_regression(
    history: List[Dict], record: Dict, threshold: float = 0.20
) -> bool:
    """Compare ``record`` against the last comparable history entry.

    Comparable means same (nodes, fractions, seeds) — the workload, not
    the host.  Returns True when the serial wall time regressed by more
    than ``threshold`` (smoke runs treat that as a failure); prints the
    verdict either way so the perf trajectory is visible in CI logs.
    """
    workload = ("nodes", "fractions", "seeds")
    previous = next(
        (
            entry
            for entry in reversed(history)
            if all(entry.get(k) == record[k] for k in workload)
            and serial_wall(entry) is not None
        ),
        None,
    )
    if previous is None:
        print("perf: no comparable prior record; skipping regression check")
        return False
    before = serial_wall(previous)
    after = serial_wall(record)
    if after is None or not before:
        print("perf: no serial baseline in this run; skipping check")
        return False
    delta = (after - before) / before
    verdict = "REGRESSION" if delta > threshold else "ok"
    print(
        f"perf: serial wall {after:.2f}s vs {before:.2f}s last time "
        f"({delta:+.1%}, threshold +{threshold:.0%}) — {verdict}"
    )
    return delta > threshold


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=60)
    parser.add_argument(
        "--fractions",
        type=float,
        nargs="+",
        default=[0.05, 0.1, 0.2],
        metavar="F",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[1, 2, 3, 4], metavar="S"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        metavar="N",
        help="worker counts to benchmark (must include 1 for the baseline)",
    )
    parser.add_argument(
        "--jobs-list",
        metavar="LIST",
        default=None,
        help="comma-separated worker counts (e.g. '1,2,4'); overrides "
        "--jobs so one invocation benches the whole ladder",
    )
    parser.add_argument(
        "--assert-speedup",
        action="append",
        default=[],
        metavar="JOBS:FLOOR",
        help="fail unless the jobs=JOBS speedup reaches FLOOR; repeatable; "
        "skipped with a warning when the host has fewer than JOBS cores",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI configuration (30 nodes, one fraction, jobs 1 2)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_sweep.json",
        help="where to write the JSON record (default: ./BENCH_sweep.json)",
    )
    args = parser.parse_args()
    floors = parse_speedup_floors(args.assert_speedup)
    if args.smoke:
        args.nodes = 30
        args.fractions = [0.1]
        args.seeds = [1, 2]
        args.jobs = [1, 2]
    if args.jobs_list:
        args.jobs = [int(part) for part in args.jobs_list.split(",")]
    if 1 not in args.jobs:
        args.jobs = [1] + args.jobs

    trials = len(args.fractions) * len(args.seeds)
    print(
        f"bench: {args.nodes} nodes, fractions {args.fractions}, "
        f"{len(args.seeds)} seeds ({trials} trials), jobs {args.jobs}"
    )

    rows: List[Dict] = []
    baseline_wall = None
    baseline_sig = None
    identical = True
    for jobs in args.jobs:
        # Each jobs value gets a freshly started pool, so its wall time
        # includes the one-off worker warm-up it would pay in real use
        # and its pool counters are isolated from the previous run's.
        shutdown_worker_pool()
        start = time.perf_counter()
        series = run_sweep(args.nodes, args.fractions, args.seeds, jobs)
        wall = time.perf_counter() - start
        pool = pool_row(jobs, trials)
        sig = series_signature(series)
        events = total_events(series)
        if jobs == 1 and baseline_sig is None:
            baseline_wall = wall
            baseline_sig = sig
        speedup = baseline_wall / wall if baseline_wall else 0.0
        matches = sig == baseline_sig
        identical = identical and matches
        row = {
            "jobs": jobs,
            "wall_seconds": round(wall, 4),
            "trials_per_second": round(trials / wall, 3),
            "speedup": round(speedup, 3),
            "events_executed": events,
            "events_per_second": round(events / max(wall, 1e-9)),
            "identical_to_serial": matches,
        }
        if pool is not None:
            row["pool"] = pool
        rows.append(row)
        flag = "" if matches else "  MISMATCH vs serial!"
        print(
            f"  jobs={jobs:<3d} wall {wall:7.2f} s  "
            f"{row['trials_per_second']:6.2f} trials/s  "
            f"speedup {speedup:5.2f}x  "
            f"{row['events_per_second']:9,d} ev/s{flag}"
        )
        if pool is not None:
            print(
                f"           pool: cache hit rate "
                f"{pool['topology_cache_hit_rate']:.0%} "
                f"({pool['topology_cache_hits']} hit / "
                f"{pool['topology_cache_misses']} miss), "
                f"chunk size {pool['chunk_size_mean']:.1f}, "
                f"{pool['workers_spawned']} spawned + "
                f"{pool['workers_reused']} reused across "
                f"{pool['pool_runs']} pool runs, "
                f"spin-up {pool['spinup_seconds']:.2f}s"
            )

    record = {
        "recorded_utc": datetime.now(timezone.utc).isoformat(),
        "nodes": args.nodes,
        "fractions": args.fractions,
        "seeds": args.seeds,
        "trials": trials,
        "host": host_fingerprint(),
        "identical_across_jobs": identical,
        "series": baseline_sig,
        "runs": rows,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    history = load_history(out)
    regressed = check_regression(history, record)
    history.append(record)
    document = {"kind": "BENCH_sweep", "history": history}
    out.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out} ({len(history)} record(s))")

    floor_missed = check_speedup_floors(rows, floors)
    if not identical:
        print("ERROR: parallel results differ from the serial baseline")
        return 1
    if regressed and args.smoke:
        print("ERROR: serial wall time regressed beyond the 20% budget")
        return 1
    if floor_missed:
        print("ERROR: a parallel speedup floor was missed")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
