#!/usr/bin/env python3
"""Benchmark convergence delay *and* path exploration across schemes.

The start of the perf trajectory: one fixed scenario run under each MRAI /
queue scheme with causal tracing on, reporting per scheme the convergence
delay, message count, path-exploration totals and wall-clock speed, and
writing everything to a ``BENCH_convergence.json`` so CI can archive the
numbers commit over commit:

    PYTHONPATH=src python tools/bench_convergence.py
    PYTHONPATH=src python tools/bench_convergence.py --nodes 120 \\
        --failure 0.2 --out results/BENCH_convergence.json
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict

from repro.bgp.mrai import ConstantMRAI
from repro.core.dynamic_mrai import DynamicMRAI
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.obs import ObsSession
from repro.obs.manifest import host_fingerprint
from repro.topology.skewed import skewed_topology

#: The scheme ladder every bench run compares (fig07's cast plus batching).
SCHEMES = (
    ("mrai-0.5", lambda: ExperimentSpec(mrai=ConstantMRAI(0.5))),
    ("mrai-2.25", lambda: ExperimentSpec(mrai=ConstantMRAI(2.25))),
    ("dynamic", lambda: ExperimentSpec(mrai=DynamicMRAI())),
    (
        "dynamic+batch",
        lambda: ExperimentSpec(
            mrai=DynamicMRAI(), queue_discipline="dest_batch"
        ),
    ),
)


def bench_scheme(name, make_spec, args: argparse.Namespace) -> Dict:
    spec = make_spec().with_(failure_fraction=args.failure)
    obs = ObsSession(trace=True)
    topology = skewed_topology(args.nodes, seed=args.topo_seed)
    result = run_experiment(topology, spec, seed=args.seed, obs=obs)
    exploration = obs.last_exploration or {}
    wall = result.warmup_wall + result.convergence_wall
    return {
        "scheme": name,
        "convergence_delay": result.convergence_delay,
        "messages_sent": result.messages_sent,
        "route_changes": result.route_changes,
        "paths_explored_total": exploration.get("paths_explored_total", 0),
        "paths_explored_max": exploration.get("paths_explored_max", 0),
        "settle_p95": exploration.get("settle", {}).get("p95", 0.0),
        "events_executed": result.events_executed,
        "wall_seconds": round(wall, 4),
        "events_per_second": round(result.events_executed / max(wall, 1e-9)),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=60)
    parser.add_argument("--failure", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--topo-seed", type=int, default=3)
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_convergence.json",
        help="where to write the JSON record (default: ./BENCH_convergence.json)",
    )
    args = parser.parse_args()

    print(
        f"bench: {args.nodes} nodes, {args.failure:.0%} failure, "
        f"seed {args.seed}, topology seed {args.topo_seed}"
    )
    rows = []
    for name, make_spec in SCHEMES:
        row = bench_scheme(name, make_spec, args)
        rows.append(row)
        print(
            f"  {name:<14} delay {row['convergence_delay']:7.2f} s  "
            f"msgs {row['messages_sent']:6d}  "
            f"paths {row['paths_explored_total']:5d}  "
            f"{row['events_per_second']:8,d} ev/s"
        )

    record = {
        "kind": "BENCH_convergence",
        "nodes": args.nodes,
        "failure_fraction": args.failure,
        "seed": args.seed,
        "topo_seed": args.topo_seed,
        "host": host_fingerprint(),
        "schemes": rows,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")

    # The headline sanity claim of the paper: the adaptive schemes must
    # not explore more than the aggressive constant on the same seed.
    static = next(r for r in rows if r["scheme"] == "mrai-0.5")
    dynamic = next(r for r in rows if r["scheme"] == "dynamic")
    if dynamic["paths_explored_total"] >= static["paths_explored_total"]:
        print(
            "WARNING: dynamic MRAI did not reduce path exploration "
            f"({dynamic['paths_explored_total']} >= "
            f"{static['paths_explored_total']})"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
