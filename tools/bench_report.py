#!/usr/bin/env python3
"""Benchmark trend + span-attribution report.

Reads the ``BENCH_sweep.json`` history that ``tools/bench_sweep.py``
appends to (legacy single-record files are understood too) and prints
the performance trajectory: events/sec and parallel speedup per record,
newest last, so a regression shows up as a trend break rather than a
single mysterious number.  With ``--spans spans.json`` (written by
``repro-bgp sweep --spans-out`` or ``tools/bench_sweep.py`` via the obs
layer) it also prints an *attribution table* for the serial-vs-parallel
gap: how much of the parallel wall clock went to worker simulation,
pool spin-up, task pickling/submit, result collection, store traffic
and observability absorption — the "why is jobs=4 not 4x" answer.

    PYTHONPATH=src python tools/bench_report.py
    PYTHONPATH=src python tools/bench_report.py --spans spans.json
    PYTHONPATH=src python tools/bench_report.py --overhead-check

``--overhead-check`` is the CI gate for the instrumentation layer
itself: it micro-benchmarks the *disabled* ``span()`` fast path and the
monitors-off data-plane hook site and asserts each projected per-trial
cost stays under 2% of the most recent benchmark's serial per-trial
wall time (exit 1 otherwise).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

# Allow running as `python tools/bench_report.py` from the repo root
# without PYTHONPATH (CI sets it anyway).
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs.spans import record_spans, span  # noqa: E402

#: Spans opened per executed trial by the instrumented orchestration
#: stack (topology.build, store.spec_hash, store.get, store.put,
#: trial.execute, trial.warmup, trial.failure, trial.convergence, plus
#: amortized per-run spans) — the multiplier for the overhead gate.
SPANS_PER_TRIAL = 16

#: Data-plane monitor hook sites executed per trial with monitors *off*
#: (one ``network.dataplane`` read + None check per best-route change).
#: Sized to the route-change counts of the largest bench trials, with
#: headroom.
MONITOR_HOOKS_PER_TRIAL = 4096


def load_history(path: Path) -> List[Dict]:
    """Benchmark records at ``path``, oldest first.

    Understands both shapes ``bench_sweep.py`` has ever written: the
    current ``{"kind": "BENCH_sweep", "history": [...]}`` document and
    the legacy single-record file (one record at the top level).
    """
    if not path.exists():
        return []
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return []
    if not isinstance(data, dict):
        return []
    history = data.get("history")
    if isinstance(history, list):
        return [r for r in history if isinstance(r, dict)]
    if data.get("kind") == "BENCH_sweep":
        return [{k: v for k, v in data.items() if k != "kind"}]
    return []


def _run_row(record: Dict, jobs: int) -> Optional[Dict]:
    for row in record.get("runs", []):
        if row.get("jobs") == jobs:
            return row
    return None


def _workload(record: Dict) -> str:
    return (
        f"{record.get('nodes', '?')}n x {len(record.get('fractions', []))}f "
        f"x {len(record.get('seeds', []))}s"
    )


def render_trend(history: List[Dict], last: int = 10) -> str:
    """The perf trajectory table: one line per record, newest last."""
    if not history:
        return "no benchmark records"
    shown = history[-last:]
    lines = [
        f"bench trend ({len(shown)} of {len(history)} record(s), "
        f"newest last):",
        f"{'recorded':<21} {'workload':<14} {'serial s':>9} "
        f"{'ev/s':>10} {'best speedup':>13} {'cache':>6}",
    ]
    for record in shown:
        stamp = str(record.get("recorded_utc", "?"))[:19]
        serial = _run_row(record, 1)
        serial_wall = serial.get("wall_seconds") if serial else None
        events_s = serial.get("events_per_second") if serial else None
        best = max(
            (
                float(row.get("speedup", 0.0))
                for row in record.get("runs", [])
                if row.get("jobs", 1) != 1
            ),
            default=0.0,
        )
        best_jobs = None
        best_pool = None
        for row in record.get("runs", []):
            if (
                row.get("jobs", 1) != 1
                and float(row.get("speedup", 0.0)) == best
            ):
                best_jobs = row.get("jobs")
                best_pool = row.get("pool")
                break
        hit_rate = (
            f"{best_pool['topology_cache_hit_rate']:>5.0%}"
            if isinstance(best_pool, dict)
            and "topology_cache_hit_rate" in best_pool
            else f"{'—':>5}"
        )
        lines.append(
            f"{stamp:<21} {_workload(record):<14} "
            f"{serial_wall if serial_wall is not None else float('nan'):>9.2f} "
            f"{events_s if events_s is not None else 0:>10,.0f} "
            + (
                f"{best:>10.2f}x @{best_jobs}"
                if best
                else f"{'—':>13}"
            )
            + f" {hit_rate}"
        )
    firsts = [r for r in (history[0], history[-1])]
    a, b = (_run_row(r, 1) for r in firsts)
    if a and b and a.get("events_per_second") and len(history) > 1:
        delta = (
            b["events_per_second"] - a["events_per_second"]
        ) / a["events_per_second"]
        lines.append(
            f"events/s: {a['events_per_second']:,.0f} -> "
            f"{b['events_per_second']:,.0f} ({delta:+.1%} over "
            f"{len(history)} records)"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Span attribution
# ---------------------------------------------------------------------------
def load_rollup(path: Path) -> List[Dict]:
    """The rollup table embedded in a spans.json Chrome-trace document."""
    data = json.loads(path.read_text(encoding="utf-8"))
    rollup = data.get("rollup", [])
    if not isinstance(rollup, list):
        raise ValueError(f"{path}: no rollup table (not written by repro?)")
    return rollup


def _total(rollup: Sequence[Dict], *leaves: str, prefix: str = "") -> float:
    """Summed seconds of rollup rows matching leaf name (and path prefix)."""
    out = 0.0
    for row in rollup:
        path = str(row.get("path", ""))
        if prefix and not path.startswith(prefix):
            continue
        if path.rsplit("/", 1)[-1] in leaves:
            out += float(row.get("total_seconds", 0.0))
    return out


def _attrs_from_trace(path: Path, key: str) -> List[float]:
    """Every numeric value of a span attribute across the trace events."""
    data = json.loads(path.read_text(encoding="utf-8"))
    return [
        float(value)
        for event in data.get("traceEvents", [])
        for value in [event.get("args", {}).get(key)]
        if isinstance(value, (int, float))
    ]


def _attr_from_trace(path: Path, key: str) -> Optional[float]:
    """The first numeric value of a span attribute in the trace events."""
    values = _attrs_from_trace(path, key)
    return values[0] if values else None


def render_attribution(path: Path, jobs: Optional[int] = None) -> str:
    """Where the parallel wall clock went, from a spans.json rollup.

    The headline is the gap between the *ideal* parallel wall
    (worker busy time / jobs) and the measured wall; the table
    attributes the difference to the orchestration steps the span layer
    instruments.  Worker busy time exceeding the wall is the
    parallelism actually achieved.
    """
    rollup = load_rollup(path)
    if not rollup:
        return f"{path}: empty rollup (no spans recorded)"
    roots = [r for r in rollup if "/" not in str(r.get("path", ""))]
    wall = max(
        (float(r.get("total_seconds", 0.0)) for r in roots), default=0.0
    )
    worker_busy = _total(rollup, "trial.execute", prefix="workers/")
    inline_busy = 0.0
    if worker_busy == 0.0:
        # Serial run: trial.execute spans live in the parent tree.
        inline_busy = _total(rollup, "trial.execute")
    busy = worker_busy or inline_busy
    if jobs is None:
        jobs_attr = _attr_from_trace(path, "jobs")
        jobs = int(jobs_attr) if jobs_attr else 1
    # A warm pool boots once: later pool.run spans report 0 spin-up, so
    # the sum over the trace is the run's true one-off warm-up cost.
    spinup = sum(_attrs_from_trace(path, "spinup_seconds"))
    submit = _total(rollup, "pool.submit")
    digest = _total(rollup, "pool.digest")
    collect = _total(rollup, "pool.collect")
    fold = _total(rollup, "trials.fold", "campaign.fold")
    absorb = _total(rollup, "obs.absorb")
    store = _total(rollup, "store.get", "store.put", "store.spec_hash")
    topo = _total(rollup, "topology.build")
    seeds = _total(rollup, "parallel.derive_seeds")
    # Warm-pool reuse attrs ride each pool.run span (PoolRunStats):
    # spawns total across the trace, reuse peaks once the pool is warm,
    # and the hit rate is aggregated from the per-run hit/miss counts.
    reused_values = _attrs_from_trace(path, "workers_reused")
    spawned_values = _attrs_from_trace(path, "workers_spawned")
    reused = max(reused_values) if reused_values else None
    spawned = sum(spawned_values) if spawned_values else None
    hits = sum(_attrs_from_trace(path, "topology_cache_hits"))
    misses = sum(_attrs_from_trace(path, "topology_cache_misses"))
    hit_rate = hits / (hits + misses) if hits + misses else None
    ideal = busy / jobs if jobs else busy
    # Collection time not covered by concurrent worker compute is
    # scheduling/IPC idle — the pool waiting on pickles and stragglers.
    collect_idle = max(0.0, collect - ideal)

    def pct(x: float) -> str:
        return f"{x / wall:7.1%}" if wall else "      ?"

    lines = [
        f"span attribution ({path}):",
        f"  wall clock            {wall:9.3f} s   (jobs={jobs})",
        f"  worker busy (sum)     {busy:9.3f} s   "
        f"{busy / wall if wall else 0:.2f}x the wall — achieved parallelism",
        f"  ideal wall (busy/{jobs})  {ideal:9.3f} s   "
        f"gap to measured: {wall - ideal:+.3f} s",
        "  gap attribution:",
        f"    pool spin-up        {spinup:9.3f} s  {pct(spinup)}",
        f"    task submit/pickle  {submit:9.3f} s  {pct(submit)}",
        f"    topology digest     {digest:9.3f} s  {pct(digest)}",
        f"    collect idle        {collect_idle:9.3f} s  {pct(collect_idle)}",
        f"    result fold         {fold:9.3f} s  {pct(fold)}",
        f"    obs absorb          {absorb:9.3f} s  {pct(absorb)}",
        f"    store get/put/hash  {store:9.3f} s  {pct(store)}",
        f"    topology build      {topo:9.3f} s  {pct(topo)}",
        f"    seed derivation     {seeds:9.3f} s  {pct(seeds)}",
    ]
    if reused is not None or spawned is not None:
        reuse_bits = [
            f"{int(reused or 0)} worker(s) reused",
            f"{int(spawned or 0)} spawned",
        ]
        if hit_rate is not None:
            reuse_bits.append(f"topology cache hit rate {hit_rate:.0%}")
        lines.append("  warm pool: " + ", ".join(reuse_bits))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Disabled-spans overhead gate
# ---------------------------------------------------------------------------
def disabled_span_cost(iterations: int = 200_000) -> float:
    """Mean seconds per disabled ``span()`` call (enter + exit included)."""
    # Warm-up so the first-call import/bytecode cost is not billed.
    for _ in range(1000):
        with span("warmup"):
            pass
    start = time.perf_counter()
    for _ in range(iterations):
        with span("probe", x=1):
            pass
    return (time.perf_counter() - start) / iterations


def enabled_span_cost(iterations: int = 50_000) -> float:
    """Mean seconds per *recorded* span (for the report, not the gate)."""
    with record_spans():
        start = time.perf_counter()
        for _ in range(iterations):
            with span("probe", x=1):
                pass
        elapsed = time.perf_counter() - start
    return elapsed / iterations


def disabled_monitor_cost(iterations: int = 200_000) -> float:
    """Mean seconds per monitors-off data-plane hook site.

    Replicates the exact hot-path shape in ``BGPSpeaker._reselect``:
    one attribute read on the network object plus a None check.
    """

    class _Net:
        dataplane = None

    net = _Net()
    for _ in range(1000):
        if net.dataplane is not None:  # pragma: no cover - always None
            raise AssertionError
    start = time.perf_counter()
    for _ in range(iterations):
        dataplane = net.dataplane
        if dataplane is not None:  # pragma: no cover - always None
            raise AssertionError
    return (time.perf_counter() - start) / iterations


def overhead_check(
    history: List[Dict], budget: float = 0.02
) -> int:
    """Exit status of the disabled-instrumentation overhead gate.

    Projects ``SPANS_PER_TRIAL`` disabled span() calls and
    ``MONITOR_HOOKS_PER_TRIAL`` monitors-off data-plane hook sites
    against the most recent benchmark record's serial per-trial wall
    time; fails when either projection exceeds ``budget`` (default 2%).
    """
    per_span = disabled_span_cost()
    per_span_on = enabled_span_cost()
    per_hook = disabled_monitor_cost()
    print(
        f"span cost: disabled {per_span * 1e9:,.0f} ns/span, "
        f"enabled {per_span_on * 1e9:,.0f} ns/span"
    )
    print(
        f"data-plane hook cost (monitors off): "
        f"{per_hook * 1e9:,.0f} ns/hook"
    )
    per_trial_wall = None
    for record in reversed(history):
        serial = _run_row(record, 1)
        trials = record.get("trials")
        if serial and trials:
            per_trial_wall = float(serial["wall_seconds"]) / int(trials)
            break
    if per_trial_wall is None:
        # No benchmark history (fresh clone): gate against a very
        # conservative 50 ms/trial floor instead of passing vacuously.
        per_trial_wall = 0.05
        print("no benchmark history; gating against 50 ms/trial floor")
    projected = SPANS_PER_TRIAL * per_span
    share = projected / per_trial_wall
    verdict = "ok" if share < budget else "FAIL"
    print(
        f"overhead gate: {SPANS_PER_TRIAL} spans/trial x "
        f"{per_span * 1e6:.3f} us = {projected * 1e6:.1f} us/trial "
        f"vs {per_trial_wall * 1e3:.1f} ms/trial serial wall "
        f"({share:.3%} of budget {budget:.0%}) — {verdict}"
    )
    hook_projected = MONITOR_HOOKS_PER_TRIAL * per_hook
    hook_share = hook_projected / per_trial_wall
    hook_verdict = "ok" if hook_share < budget else "FAIL"
    print(
        f"monitor gate:  {MONITOR_HOOKS_PER_TRIAL} hooks/trial x "
        f"{per_hook * 1e9:.1f} ns = {hook_projected * 1e6:.1f} us/trial "
        f"vs {per_trial_wall * 1e3:.1f} ms/trial serial wall "
        f"({hook_share:.3%} of budget {budget:.0%}) — {hook_verdict}"
    )
    return 0 if share < budget and hook_share < budget else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench",
        metavar="PATH",
        default="BENCH_sweep.json",
        help="benchmark history file (default: ./BENCH_sweep.json)",
    )
    parser.add_argument(
        "--spans",
        metavar="PATH",
        help="spans.json (Chrome trace with rollup) to attribute",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker count for the attribution's ideal-wall line "
        "(default: read from the trace's pool.run attributes)",
    )
    parser.add_argument(
        "--last",
        type=int,
        default=10,
        metavar="N",
        help="how many trend rows to print (default 10)",
    )
    parser.add_argument(
        "--overhead-check",
        action="store_true",
        help="micro-benchmark the disabled span() path and the "
        "monitors-off data-plane hook and fail if either projected "
        "per-trial cost exceeds 2%% of serial trial wall",
    )
    args = parser.parse_args(argv)

    history = load_history(Path(args.bench))
    if args.overhead_check:
        return overhead_check(history)
    print(render_trend(history, last=args.last))
    if args.spans:
        spans_path = Path(args.spans)
        if not spans_path.exists():
            print(f"{spans_path}: not found", file=sys.stderr)
            return 2
        print()
        print(render_attribution(spans_path, jobs=args.jobs))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
