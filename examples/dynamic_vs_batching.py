#!/usr/bin/env python3
"""Inside the paper's two schemes: what actually happens under overload.

Runs the same 15% geographic failure under four configurations and digs
into the mechanisms rather than just the headline delay:

* how many MRAI level transitions the dynamic controllers make, and where
  the per-node MRAI ladder ends up (high-degree nodes climb, leaves don't);
* how many stale updates the batching scheme deletes without processing,
  and how much processing work that saves;
* message/withdrawal accounting for each scheme.

Run:  python examples/dynamic_vs_batching.py
"""

from repro import SkewedDegreeSpec, skewed_topology
from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.core.dynamic_mrai import DynamicController, DynamicMRAI
from repro.core.validation import validate_routing
from repro.failures.scenarios import geographic_failure

NODES = 60
FAILURE = 0.15


def run(config, topology, scenario, seed=1):
    net = BGPNetwork(topology, config, seed=seed)
    net.start()
    net.run_until_quiet(max_time=3600)
    validate_routing(net)
    snapshot = net.counters.snapshot()
    t0 = net.fail_nodes(scenario.nodes)
    net.run_until_quiet(max_time=3600)
    validate_routing(net)
    return net, net.last_activity - t0, net.counters.diff(snapshot)


def main() -> None:
    topology = skewed_topology(NODES, SkewedDegreeSpec.paper_70_30(), seed=5)
    scenario = geographic_failure(topology, FAILURE)
    print(topology.summary())
    print(f"failing {scenario.description}\n")

    configs = {
        "constant 0.5s": BGPConfig(mrai_policy=ConstantMRAI(0.5)),
        "dynamic": BGPConfig(mrai_policy=DynamicMRAI()),
        "batching @0.5s": BGPConfig(
            mrai_policy=ConstantMRAI(0.5), queue_discipline="dest_batch"
        ),
        "batch+dynamic": BGPConfig(
            mrai_policy=DynamicMRAI(), queue_discipline="dest_batch"
        ),
    }

    for label, config in configs.items():
        net, delay, diff = run(config, topology, scenario)
        print(f"=== {label} ===")
        print(f"  convergence delay : {delay:8.2f} s")
        print(f"  updates sent      : {diff.get('updates_sent', 0):8d}")
        print(f"  withdrawals       : {diff.get('withdrawals_sent', 0):8d}")
        print(f"  updates processed : {diff.get('updates_processed', 0):8d}")
        stale = diff.get("updates_dropped_stale", 0)
        if stale:
            saved = stale * config.mean_processing_delay
            print(
                f"  stale deleted     : {stale:8d} "
                f"(~{saved:.1f} s of processing avoided)"
            )
        controllers = [
            s.controller
            for s in net.speakers.values()
            if isinstance(s.controller, DynamicController)
        ]
        if controllers:
            ups = sum(c.transitions_up for c in controllers)
            downs = sum(c.transitions_down for c in controllers)
            climbed = sum(1 for c in controllers if c.level > 0)
            top = sum(
                1 for c in controllers if c.level == len(c.levels) - 1
            )
            print(
                f"  MRAI transitions  : {ups} up / {downs} down; "
                f"{climbed} nodes above base level, {top} at the top"
            )
            by_degree = {}
            for node_id, speaker in net.speakers.items():
                ctl = speaker.controller
                if isinstance(ctl, DynamicController):
                    bucket = (
                        "high-degree"
                        if net.topology.degree(node_id) >= 4
                        else "low-degree"
                    )
                    by_degree.setdefault(bucket, []).append(ctl.value())
            for bucket, values in sorted(by_degree.items()):
                mean_val = sum(values) / len(values)
                print(
                    f"    final MRAI at {bucket:>11} nodes: "
                    f"mean {mean_val:.2f} s"
                )
        print()


if __name__ == "__main__":
    main()
