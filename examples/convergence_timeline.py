#!/usr/bin/env python3
"""Watch a convergence happen: queue backlog and invalid routes over time.

The paper's schemes work by reducing *processing backlog* and *invalid
transient routes* during reconvergence.  This example attaches a sampling
probe to the network, fails 15% of it, and renders the resulting time
series as sparklines — the mechanism behind Figs 10-12 made visible:

* under plain FIFO at a fast MRAI, queues at high-degree nodes grow into
  the thousands and invalid routes circulate for tens of seconds;
* under per-destination batching the same failure drains in a fraction of
  the time.

Run:  python examples/convergence_timeline.py
"""

from repro import SkewedDegreeSpec, skewed_topology
from repro.analysis.timeseries import Probe, sparkline
from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.failures.scenarios import geographic_failure

NODES = 60
FAILURE = 0.15
SAMPLE_INTERVAL = 0.25


def run_with_probe(queue_discipline: str):
    topology = skewed_topology(NODES, SkewedDegreeSpec.paper_70_30(), seed=5)
    config = BGPConfig(
        mrai_policy=ConstantMRAI(0.5), queue_discipline=queue_discipline
    )
    network = BGPNetwork(topology, config, seed=1)
    network.start()
    network.run_until_quiet(max_time=3600)
    probe = Probe(network, interval=SAMPLE_INTERVAL)
    probe.start()
    scenario = geographic_failure(topology, FAILURE)
    t0 = network.fail_nodes(scenario.nodes)
    network.run_until_quiet(max_time=3600)
    return probe, network.last_activity - t0


def show(label: str, probe: Probe, delay: float) -> None:
    queued = probe.series("total_queued")
    invalid = probe.series("invalid_routes")
    span = probe.samples[-1].time - probe.samples[0].time
    print(f"=== {label} ===")
    print(f"  convergence delay : {delay:6.2f} s")
    print(f"  peak queued msgs  : {int(probe.peak('total_queued')):6d}")
    print(
        f"  peak invalid routes {int(probe.peak('invalid_routes')):6d} "
        f"(transient routes through dead ASes)"
    )
    print(f"  queue backlog  |{sparkline(queued)}|")
    print(f"  invalid routes |{sparkline(invalid)}|")
    print(f"                  ^ {span:.0f} s of simulated time")
    print()


def main() -> None:
    print(
        f"Failing {FAILURE:.0%} of a {NODES}-node 70-30 network "
        f"(MRAI 0.5 s), sampled every {SAMPLE_INTERVAL} s\n"
    )
    for label, discipline in (
        ("plain FIFO processing", "fifo"),
        ("per-destination batching", "dest_batch"),
        ("withdrawal-first batching", "dest_batch_wf"),
    ):
        probe, delay = run_with_probe(discipline)
        show(label, probe, delay)


if __name__ == "__main__":
    main()
