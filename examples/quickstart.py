#!/usr/bin/env python3
"""Quickstart: one BGP convergence experiment, end to end.

Builds the paper's default topology family (single-router ASes, "70-30"
skewed degree distribution), warms the network up to steady state, fails a
contiguous 10% region at the center of the grid, and reports how long BGP
takes to reconverge and how many update messages that costs.

Run:  python examples/quickstart.py
"""

from repro import (
    ConstantMRAI,
    ExperimentSpec,
    SkewedDegreeSpec,
    geographic_failure,
    run_experiment,
    skewed_topology,
)


def main() -> None:
    # 60 ASes keeps this instant; the paper uses 120 (and checks 60/240).
    topology = skewed_topology(60, SkewedDegreeSpec.paper_70_30(), seed=7)
    print(topology.summary())

    scenario = geographic_failure(topology, fraction=0.10)
    print(f"failure scenario : {scenario.description}")

    spec = ExperimentSpec(
        mrai=ConstantMRAI(0.5),      # the "fast" MRAI configuration
        failure_fraction=0.10,
        validate=True,               # check routing invariants before/after
    )
    result = run_experiment(topology, spec, seed=1, scenario=scenario)

    print(f"warm-up converged in  : {result.warmup_time:8.2f} s (simulated)")
    print(f"convergence delay     : {result.convergence_delay:8.2f} s")
    print(f"update messages       : {result.messages_sent:8d}")
    print(f"  of which withdrawals: {result.withdrawals_sent:8d}")
    print(f"route changes         : {result.route_changes:8d}")
    print(f"engine events         : {result.events_executed:8d}")


if __name__ == "__main__":
    main()
