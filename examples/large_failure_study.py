#!/usr/bin/env python3
"""The paper's headline experiment in miniature.

Sweeps failure size (1 node up to 20% of the network) under five schemes:

* constant MRAI 0.5 s   — great for small failures, melts down for large
* constant MRAI 2.25 s  — steady but slow for small failures
* degree-dependent MRAI — fast low-degree nodes, slow high-degree nodes
* dynamic MRAI          — contribution #1: adapt MRAI to measured overload
* batching @ 0.5 s      — contribution #2: per-destination update batching

and prints the delay/message tables that correspond to Figs 1, 6, 7 and 10.

Run:  python examples/large_failure_study.py          (about a minute)
"""

from repro import (
    ConstantMRAI,
    DegreeDependentMRAI,
    DynamicMRAI,
    ExperimentSpec,
    failure_size_sweep,
    skewed_topology,
)
from repro.analysis.report import format_series_table

NODES = 60
FRACTIONS = (1.0 / NODES, 0.05, 0.10, 0.20)
SEEDS = (1,)


def topology_factory(seed: int):
    return skewed_topology(NODES, seed=seed)


def main() -> None:
    schemes = {
        "MRAI=0.5s": ExperimentSpec(mrai=ConstantMRAI(0.5)),
        "MRAI=2.25s": ExperimentSpec(mrai=ConstantMRAI(2.25)),
        "degree 0.5/2.25": ExperimentSpec(
            mrai=DegreeDependentMRAI(0.5, 2.25)
        ),
        "dynamic": ExperimentSpec(mrai=DynamicMRAI()),
        "batching@0.5": ExperimentSpec(
            mrai=ConstantMRAI(0.5), queue_discipline="dest_batch"
        ),
    }
    series = []
    for label, spec in schemes.items():
        print(f"running {label} ...")
        series.append(
            failure_size_sweep(
                topology_factory, spec, FRACTIONS, SEEDS, label=label
            )
        )
    print()
    print(
        format_series_table(
            series, metric="delay", title="Convergence delay (seconds)"
        )
    )
    print()
    print(
        format_series_table(
            series, metric="messages", title="Update messages after failure"
        )
    )
    print()
    low, high, degree, dynamic, batching = series
    largest = FRACTIONS[-1]
    print("What the paper predicts, observed here:")
    print(
        f"  - low MRAI blows up at {largest:.0%} failures: "
        f"{low.delay_at(largest):.1f}s vs {high.delay_at(largest):.1f}s "
        f"for the high constant"
    )
    print(
        f"  - batching cuts the low-MRAI meltdown by "
        f"{low.delay_at(largest) / batching.delay_at(largest):.1f}x"
    )
    print(
        f"  - dynamic MRAI stays near the best constant at every size "
        f"(largest-failure delay {dynamic.delay_at(largest):.1f}s)"
    )


if __name__ == "__main__":
    main()
