#!/usr/bin/env python3
"""Everything the paper left for future work, running together.

Four scenarios on the same 60-node network and 10% geographic failure:

1. **Realistic failure detection** — explicit BGP sessions (OPEN /
   KEEPALIVE / hold timers): nobody tells the survivors about the
   failure; their hold timers notice the silence.
2. **Failure-extent-adaptive MRAI** — the Sec-5 wish: estimate the
   failure's extent from destination churn and jump straight to the
   right MRAI (plus the analytically derived ladder from
   ``repro.core.theory``, needing no measured sweep at all).
3. **Withdrawal-first batching** — the proposed batching refinement:
   schedule bad news ahead of re-advertisements.
4. **Route flap damping (RFC 2439)** — what operators actually deployed,
   for contrast.

Run:  python examples/beyond_the_paper.py
"""

from repro import SkewedDegreeSpec, skewed_topology
from repro.bgp.config import BGPConfig
from repro.bgp.damping import DampingConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.bgp.session import SessionConfig
from repro.core.adaptive import AdaptiveExtentMRAI
from repro.core.theory import recommend_ladder, recommend_mrai
from repro.core.dynamic_mrai import DynamicMRAI
from repro.failures.scenarios import geographic_failure

NODES = 60
FAILURE = 0.10


def main() -> None:
    topology = skewed_topology(NODES, SkewedDegreeSpec.paper_70_30(), seed=5)
    scenario = geographic_failure(topology, FAILURE)
    print(topology.summary())
    print(f"failing {scenario.description}\n")

    # --- 1. Explicit sessions: detection emerges from silence -----------
    config = BGPConfig(
        mrai_policy=ConstantMRAI(0.5),
        session=SessionConfig(hold_time=3.0, keepalive_time=1.0),
    )
    net = BGPNetwork(topology, config, seed=1)
    net.start()
    net.run_until_converged(idle_window=2.0, max_time=600.0)
    snapshot = net.counters.snapshot()
    t0 = net.fail_nodes(scenario.nodes)  # silent: no one is notified
    net.run_until_converged(idle_window=4.0, max_time=t0 + 600.0)
    diff = net.counters.diff(snapshot)
    print("=== explicit sessions (hold 3 s / keepalive 1 s) ===")
    print(f"  sessions hold-expired : {diff.get('sessions_hold_expired', 0)}")
    print(f"  convergence delay     : {net.last_activity - t0:6.2f} s "
          f"(includes the silent hold-timer detection)")
    print(f"  session messages sent : {diff.get('session_messages_sent', 0)}\n")

    # --- 2/3/4. Future-work schemes vs the deployed mechanism -----------
    ladder = recommend_ladder(topology)
    print("analytic MRAI model (repro.core.theory):")
    for fraction in (0.02, 0.05, 0.10, 0.20):
        print(f"  predicted optimal MRAI @ {fraction:4.0%}: "
              f"{recommend_mrai(topology, fraction):5.2f} s")
    print(f"  derived dynamic ladder: {ladder}\n")

    configs = {
        "constant 0.5 s (baseline)": BGPConfig(mrai_policy=ConstantMRAI(0.5)),
        "adaptive failure-extent MRAI": BGPConfig(
            mrai_policy=AdaptiveExtentMRAI(total_destinations=NODES)
        ),
        "dynamic MRAI @ analytic ladder": BGPConfig(
            mrai_policy=DynamicMRAI(levels=ladder)
        ),
        "withdrawal-first batching": BGPConfig(
            mrai_policy=ConstantMRAI(0.5), queue_discipline="dest_batch_wf"
        ),
        "flap damping (RFC 2439)": BGPConfig(
            mrai_policy=ConstantMRAI(0.5),
            damping=DampingConfig(half_life=4.0),
        ),
    }
    print(f"{'scheme':34s} {'delay':>8s} {'messages':>9s} {'notes'}")
    for label, config in configs.items():
        net = BGPNetwork(topology, config, seed=1)
        net.start()
        net.run_until_quiet(max_time=3600.0)
        snapshot = net.counters.snapshot()
        t0 = net.fail_nodes(scenario.nodes)
        net.run_until_quiet(max_time=t0 + 3600.0)
        diff = net.counters.diff(snapshot)
        notes = []
        if diff.get("updates_dropped_stale"):
            notes.append(f"{diff['updates_dropped_stale']} stale deleted")
        if diff.get("routes_suppressed"):
            notes.append(
                f"{diff['routes_suppressed']} suppressed / "
                f"{diff.get('routes_reused', 0)} reused"
            )
        print(
            f"{label:34s} {net.last_activity - t0:7.2f}s "
            f"{diff.get('updates_sent', 0):9d} {'; '.join(notes)}"
        )


if __name__ == "__main__":
    main()
