#!/usr/bin/env python3
"""Resumable campaigns end to end: interrupt a grid, resume only the rest.

Builds a small Fig-1-style campaign (two MRAI schemes x two failure
fractions x two seeds), then demonstrates the store contract:

1. run the campaign cold — every trial executes and is committed;
2. simulate a crash by deleting some stored trials and "re-running":
   the resume executes exactly the missing trials, nothing else;
3. a second full run is 100% cache hits and its folded series is
   bit-identical to the cold run's.

Run:  python examples/resumable_campaign.py [--jobs N]
"""

import argparse
import sqlite3
import tempfile
from pathlib import Path

from repro.store import (
    Campaign,
    ResultStore,
    campaign_status,
    run_campaign,
)

CAMPAIGN = {
    "name": "resume-demo",
    "topology": {"kind": "skewed", "nodes": 30, "distribution": "70-30"},
    "schemes": {
        "fifo-0.5": {"mrai": 0.5},
        "dynamic": {"mrai_scheme": "dynamic", "levels": [0.5, 1.25, 2.25]},
    },
    "axis": {"name": "failure_fraction", "values": [0.05, 0.1]},
    "seeds": [1, 2],
}


def signature(result):
    """The numbers cache identity is judged on."""
    return sorted(
        (s.label, s.delays, s.message_counts) for s in result.series
    )


def forget_trials(store_path: Path, count: int) -> None:
    """Simulate a crash by dropping ``count`` committed trials."""
    conn = sqlite3.connect(str(store_path))
    conn.execute(
        "DELETE FROM trials WHERE key IN "
        f"(SELECT key FROM trials LIMIT {count})"
    )
    conn.commit()
    conn.close()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()

    campaign = Campaign.from_dict(CAMPAIGN)
    print(
        f"campaign '{campaign.name}': {len(campaign.schemes)} schemes x "
        f"{len(campaign.values)} fractions x {len(campaign.seeds)} seeds "
        f"= {campaign.total_trials} trials\n"
    )

    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "store.db"

        # 1. cold run: everything executes.
        with ResultStore(store_path) as store:
            cold = run_campaign(campaign, store, jobs=args.jobs)
        print(
            f"cold run:   {cold.executed} executed, "
            f"{cold.cache_hits} cached ({cold.cache_hit_rate:.0%} hits)"
        )

        # 2. fake a crash: drop some committed trials, then resume.
        forget_trials(store_path, 3)
        with ResultStore(store_path) as store:
            status = campaign_status(campaign, store)
            print(
                f"after 'crash': {status.cached}/{status.total} trials banked"
            )
            resumed = run_campaign(campaign, store, jobs=args.jobs)
        print(
            f"resume:     {resumed.executed} executed, "
            f"{resumed.cache_hits} cached  <- only the missing trials ran"
        )
        assert resumed.executed == 3 and resumed.cache_hits == 5

        # 3. warm run: pure cache, identical fold.
        with ResultStore(store_path) as store:
            warm = run_campaign(campaign, store, jobs=args.jobs)
            final_status = campaign_status(campaign, store)
        print(
            f"warm run:   {warm.executed} executed, "
            f"{warm.cache_hits} cached ({warm.cache_hit_rate:.0%} hits)"
        )
        assert warm.executed == 0

        identical = (
            signature(cold) == signature(resumed) == signature(warm)
        )
        print(
            "\nfolded series bit-identical across cold/resume/warm: "
            + ("yes" if identical else "NO - cache corruption!")
        )
        if not identical:
            raise SystemExit(1)

        print(f"\n{final_status.render()}")


if __name__ == "__main__":
    main()
