#!/usr/bin/env python3
"""Fig-13-style run on a "realistic" multi-router topology.

Builds an Internet-like network: heavy-tailed AS sizes (the largest ASes
get the highest inter-AS degrees and the largest geographic regions), iBGP
full mesh inside every multi-router AS, eBGP along inter-AS links — then
fails a geographic region and compares plain BGP against the paper's two
schemes combined.

Also demonstrates the routing validator on iBGP state and the partial-AS
failure semantics (an AS keeps its prefix alive as long as any router
survives).

Run:  python examples/realistic_internet.py
"""

from repro import MultiRouterSpec, multi_router_topology
from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.core.dynamic_mrai import DynamicMRAI
from repro.core.validation import reachable_prefixes, validate_routing
from repro.failures.scenarios import geographic_failure


def converge(topology, config, seed=1):
    net = BGPNetwork(topology, config, seed=seed)
    net.start()
    net.run_until_quiet(max_time=3600)
    validate_routing(net)
    return net


def main() -> None:
    spec = MultiRouterSpec(num_ases=30, max_routers_per_as=10)
    topology = multi_router_topology(spec, seed=11)
    print(topology.summary())
    multi = [a for a in topology.as_numbers() if len(topology.as_members(a)) > 1]
    print(f"multi-router ASes : {len(multi)} of {len(topology.as_numbers())}")

    scenario = geographic_failure(topology, 0.10)
    failed_ases = {topology.as_of(n) for n in scenario.nodes}
    wiped = [
        a
        for a in failed_ases
        if set(topology.as_members(a)) <= scenario.nodes
    ]
    print(
        f"failing {scenario.size} routers across {len(failed_ases)} ASes "
        f"({len(wiped)} ASes wiped out entirely)\n"
    )

    for label, config in {
        "plain BGP, MRAI=0.5s": BGPConfig(mrai_policy=ConstantMRAI(0.5)),
        "batching + dynamic MRAI": BGPConfig(
            mrai_policy=DynamicMRAI(levels=(0.5, 1.25, 3.5)),
            queue_discipline="dest_batch",
        ),
    }.items():
        net = converge(topology, config)
        snapshot = net.counters.snapshot()
        t0 = net.fail_nodes(scenario.nodes)
        net.run_until_quiet(max_time=3600)
        validate_routing(net)
        diff = net.counters.diff(snapshot)
        print(f"=== {label} ===")
        print(f"  convergence delay : {net.last_activity - t0:8.2f} s")
        print(f"  updates sent      : {diff.get('updates_sent', 0):8d}")

        # Partially failed ASes keep their prefix alive.
        partial = sorted(a for a in failed_ases if a not in wiped)
        if partial:
            survivor = next(
                s for s in net.alive_speakers() if s.asn not in failed_ases
            )
            still_reachable = [
                a
                for a in partial
                if a in reachable_prefixes(net, survivor.node_id)
                and survivor.best_route(a) is not None
            ]
            print(
                f"  partially-failed ASes with surviving prefix: "
                f"{len(still_reachable)}/{len(partial)}"
            )
        print()


if __name__ == "__main__":
    main()
