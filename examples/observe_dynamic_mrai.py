#!/usr/bin/env python3
"""The observability layer end to end: watch dynamic MRAI do its job.

One :class:`~repro.obs.session.ObsSession` instruments a 60-node run with a
20% geographic failure under the paper's dynamic MRAI scheme:

* the **metrics registry** mirrors the network counters and per-node
  signals (updates processed, queue depths, service-time histograms);
* a **probe** samples every node's unfinished work and MRAI ladder level
  four times per simulated second — the exact signal of Figs 7-9;
* the **profiler** accounts wall-clock time per event-handler category;
* everything exports to ``out/observe_dynamic_mrai/`` as
  ``manifest.json`` + ``metrics.jsonl`` + ``timeseries.csv`` +
  ``aggregates.csv`` + ``profile.txt``.

Run:  python examples/observe_dynamic_mrai.py
"""

from repro import DynamicMRAI, ExperimentSpec, run_experiment, skewed_topology
from repro.obs import ObsSession

NODES = 60
FAILURE = 0.20
SAMPLE_INTERVAL = 0.25
OUT_DIR = "out/observe_dynamic_mrai"


def main() -> None:
    topology = skewed_topology(NODES, seed=5)
    spec = ExperimentSpec(mrai=DynamicMRAI(), failure_fraction=FAILURE)
    obs = ObsSession(sample_interval=SAMPLE_INTERVAL, profile=True)

    print(
        f"Failing {FAILURE:.0%} of a {NODES}-node network under dynamic "
        f"MRAI, sampling every {SAMPLE_INTERVAL} s...\n"
    )
    result = run_experiment(topology, spec, seed=1, obs=obs)
    probe = obs.probe

    print(f"convergence delay : {result.convergence_delay:.2f} s (sim)")
    print(f"update messages   : {result.messages_sent}")
    print(
        f"wall clock        : {result.warmup_wall:.2f} s warm-up, "
        f"{result.convergence_wall:.2f} s convergence\n"
    )

    # The dynamic scheme in action: ladder occupancy over time.  Routers
    # step up to slower MRAI levels while their unfinished work is high,
    # then back down as the backlog drains (paper Sec 4.3).
    print("time    p95 work   max work   ladder occupancy (level:count)")
    for agg in probe.aggregates:
        if agg.time < result.failure_time:
            continue
        t = agg.time - result.failure_time
        occupancy = " ".join(
            f"{level}:{count}" for level, count in sorted(agg.mrai_levels.items())
        )
        print(
            f"{t:6.2f}  {agg.work_p95:8.3f}s  {agg.work_max:8.3f}s   {occupancy}"
        )

    # The busiest router's own trajectory.
    peak_node = max(
        probe.node_samples, key=lambda s: s.unfinished_work
    ).node
    work = probe.node_series(peak_node, "unfinished_work")
    level = probe.node_series(peak_node, "mrai_level")
    print(
        f"\nbusiest router: node {peak_node} "
        f"(peak work {max(work):.2f} s, peak ladder level {int(max(level))})"
    )

    print("\n" + obs.profiler.render(top_k=5))

    print()
    for path in obs.export(OUT_DIR, command="examples/observe_dynamic_mrai"):
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
