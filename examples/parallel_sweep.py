#!/usr/bin/env python3
"""Parallel trial execution end to end: a Fig-3 MRAI sweep with --jobs.

Runs the same small MRAI sweep (convergence delay vs the MRAI value —
the paper's Fig 3 shape) twice: serially, then fanned out over worker
processes.  Prints both series side by side, the measured speedup, and
confirms the determinism contract — the parallel series is bit-identical
to the serial one on the same seeds.

Run:  python examples/parallel_sweep.py [--jobs N]
"""

import argparse
import os
import time

from repro.bgp.mrai import ConstantMRAI
from repro.core import ExperimentSpec, mrai_sweep
from repro.topology.skewed import skewed_topology

NODES = 30
MRAI_GRID = (0.5, 1.25, 2.25)
SEEDS = (1, 2)
FAILURE = 0.1


def run(jobs: int):
    spec = ExperimentSpec(mrai=ConstantMRAI(30.0), failure_fraction=FAILURE)
    start = time.perf_counter()
    series = mrai_sweep(
        lambda seed: skewed_topology(NODES, seed=seed),
        spec,
        mrai_values=MRAI_GRID,
        seeds=SEEDS,
        jobs=jobs,
    )
    return series, time.perf_counter() - start


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=min(4, os.cpu_count() or 1),
        help="worker processes for the parallel pass (default: up to 4)",
    )
    args = parser.parse_args()

    trials = len(MRAI_GRID) * len(SEEDS)
    print(
        f"MRAI sweep: {NODES} nodes, {FAILURE:.0%} failure, "
        f"grid {MRAI_GRID}, {len(SEEDS)} seeds ({trials} trials)\n"
    )

    serial, serial_wall = run(jobs=1)
    parallel, parallel_wall = run(jobs=args.jobs)

    print(f"{'MRAI (s)':>9} {'delay jobs=1':>13} {'delay jobs=' + str(args.jobs):>13}")
    for p_serial, p_par in zip(serial.points, parallel.points):
        print(f"{p_serial.x:>9.2f} {p_serial.delay:>11.2f} s {p_par.delay:>11.2f} s")

    identical = (
        serial.delays == parallel.delays
        and serial.message_counts == parallel.message_counts
    )
    speedup = serial_wall / parallel_wall if parallel_wall else 0.0
    print(
        f"\nwall: {serial_wall:.2f} s serial vs {parallel_wall:.2f} s "
        f"at jobs={args.jobs}  ->  {speedup:.2f}x speedup"
    )
    print(
        "bit-identical across backends: "
        + ("yes" if identical else "NO - determinism regression!")
    )
    if not identical:
        raise SystemExit(1)
    print(
        "\n(Process fan-out only wins with spare cores; on 1-2 core "
        "machines expect ~1x or below.)"
    )


if __name__ == "__main__":
    main()
